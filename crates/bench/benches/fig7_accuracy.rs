//! Figure 7 — "Prefetching Accuracy of Different Schemes" (higher is
//! better): of all rows prefetched, the fraction actually referenced by
//! the processor.
//!
//! Paper: CAMPS-MOD averages 70.5 %, beating BASE by 33.3 points, BASE-HIT
//! by 28.4, and MMD by 4.1; plain CAMPS lands slightly (1.5 points) below
//! MMD, which is what motivated the §3.2 buffer management.
//!
//! Run: `cargo bench -p camps-bench --bench fig7_accuracy`

use camps_bench::{figure_results, write_csv, TableWriter};
use camps_prefetch::SchemeKind;
use camps_stats::mean;
use camps_workloads::ALL_MIXES;

fn main() {
    let results = figure_results();
    let schemes = SchemeKind::PAPER;
    let headers: Vec<&str> = schemes.iter().map(|s| s.name()).collect();

    let mut t = TableWriter::new(&headers, 1);
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for mix in &ALL_MIXES {
        let row: Vec<Option<f64>> = schemes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let v = results
                    .iter()
                    .find(|r| r.mix_id == mix.id && r.scheme == s)
                    .map(|r| r.prefetch_accuracy() * 100.0);
                if let Some(v) = v {
                    per_scheme[i].push(v);
                }
                v
            })
            .collect();
        t.row(mix.id, row);
    }
    t.row("AVG", per_scheme.iter().map(|v| mean(v)).collect());

    println!("Figure 7: prefetching accuracy, % of prefetched rows referenced\n");
    println!("{}", t.render());
    let avg = |i: usize| mean(&per_scheme[i]).unwrap_or(0.0);
    println!("CAMPS-MOD average    : {:.1}%  (paper: 70.5%)", avg(4));
    println!(
        "  vs BASE            : {:+.1} points (paper: +33.3)",
        avg(4) - avg(0)
    );
    println!(
        "  vs BASE-HIT        : {:+.1} points (paper: +28.4)",
        avg(4) - avg(1)
    );
    println!(
        "  vs MMD             : {:+.1} points (paper: +4.1)",
        avg(4) - avg(2)
    );
    println!(
        "  CAMPS vs MMD       : {:+.1} points (paper: -1.5)",
        avg(3) - avg(2)
    );
    write_csv("fig7_accuracy", &t.csv_header(), &t.csv_rows());
}
