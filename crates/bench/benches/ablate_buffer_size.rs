//! Ablation: prefetch-buffer capacity (Table I uses 16 KB = 16 rows per
//! vault).
//!
//! Run: `cargo bench -p camps-bench --bench ablate_buffer_size`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;

fn main() {
    let variants: Vec<_> = [4u32, 8, 16, 32, 64]
        .into_iter()
        .map(|n| {
            let mut cfg = SystemConfig::paper_default();
            cfg.prefetch.entries = n;
            (format!("{} KB ({n} rows)", n), cfg, SchemeKind::CampsMod)
        })
        .collect();
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: prefetch-buffer rows per vault (CAMPS-MOD geomean IPC)\n");
    println!("{:>16}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>16}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_buffer_size", "variant,HM1,LM1,MX1", &csv);
}
