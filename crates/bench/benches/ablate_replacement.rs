//! Ablation: prefetch-buffer replacement policy — plain LRU (CAMPS)
//! versus the §3.2 utilization + recency policy (CAMPS-MOD), across every
//! buffer size, isolating how much of CAMPS-MOD's gain comes from buffer
//! management.
//!
//! Run: `cargo bench -p camps-bench --bench ablate_replacement`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;

fn main() {
    let mut variants = Vec::new();
    for entries in [8u32, 16, 32] {
        for (name, scheme) in [
            ("LRU", SchemeKind::Camps),
            ("util+recency", SchemeKind::CampsMod),
        ] {
            let mut cfg = SystemConfig::paper_default();
            cfg.prefetch.entries = entries;
            variants.push((format!("{entries} rows / {name}"), cfg, scheme));
        }
    }
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: buffer replacement policy (geomean IPC)\n");
    println!("{:>24}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>24}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_replacement", "variant,HM1,LM1,MX1", &csv);
}
