//! Ablation: serial-link power management (Ahn et al. [13]): links that
//! idle for a threshold drop into a low-power state and pay a re-training
//! penalty on the next packet — trading tail latency for link energy.
//!
//! Run: `cargo bench -p camps-bench --bench ablate_link_power`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;

fn main() {
    let mut variants = Vec::new();
    for (name, idle, wake) in [
        ("always on", 0u64, 0u64),
        ("sleep 1k / wake 150", 1_000, 150),
        ("sleep 200 / wake 450", 200, 450),
    ] {
        for scheme in [SchemeKind::Nopf, SchemeKind::CampsMod] {
            let mut cfg = SystemConfig::paper_default();
            cfg.link.sleep_after_idle = idle;
            cfg.link.wake_cycles = wake;
            variants.push((format!("{name} / {}", scheme.name()), cfg, scheme));
        }
    }
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: link power management (geomean IPC)\n");
    println!("{:>34}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>34}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_link_power", "variant,HM1,LM1,MX1", &csv);
}
