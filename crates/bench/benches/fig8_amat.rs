//! Figure 8 — "Reduction in Memory Access Latency" (higher is better):
//! percentage reduction in average memory access time relative to BASE,
//! for MMD and CAMPS-MOD, per workload.
//!
//! Paper: CAMPS-MOD reduces AMAT by 26 % vs BASE and 16.3 % vs MMD on
//! average.
//!
//! Metric note (see EXPERIMENTS.md): with a deep out-of-order core the
//! *mean* completed-read latency undersells an oversubscribed prefetcher —
//! BASE serves most reads from its buffer at 22 cycles while its wasted
//! row transfers destroy throughput, which the core experiences as
//! ROB-head stall time. We therefore report the latency the pipeline
//! actually pays per load — memory stall cycles / loads issued — as the
//! effective AMAT (and include the raw mean read latency in the CSV).
//!
//! Run: `cargo bench -p camps-bench --bench fig8_amat`

use camps::metrics::RunResult;
use camps_bench::{figure_results, write_csv, TableWriter};
use camps_prefetch::SchemeKind;
use camps_stats::mean;
use camps_workloads::ALL_MIXES;

/// Memory stall cycles per load — the effective AMAT the pipeline sees.
fn effective_amat(r: &RunResult) -> f64 {
    let stalls: u64 = r.core_stats.iter().map(|s| s.load_stall_cycles.get()).sum();
    let loads: u64 = r.core_stats.iter().map(|s| s.loads.get()).sum();
    stalls as f64 / loads.max(1) as f64
}

fn main() {
    let results = figure_results();
    let schemes = [SchemeKind::Mmd, SchemeKind::CampsMod];
    let headers: Vec<&str> = schemes.iter().map(|s| s.name()).collect();

    let mut t = TableWriter::new(&headers, 1);
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut csv_rows = Vec::new();
    for mix in &ALL_MIXES {
        let base = results
            .iter()
            .find(|r| r.mix_id == mix.id && r.scheme == SchemeKind::Base)
            .expect("BASE ran");
        let row: Vec<Option<f64>> = schemes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let r = results
                    .iter()
                    .find(|r| r.mix_id == mix.id && r.scheme == s)?;
                let v = (1.0 - effective_amat(r) / effective_amat(base)) * 100.0;
                per_scheme[i].push(v);
                csv_rows.push(format!(
                    "{},{},{:.3},{:.3},{:.3}",
                    mix.id,
                    s.name(),
                    v,
                    r.amat_mem,
                    base.amat_mem
                ));
                Some(v)
            })
            .collect();
        t.row(mix.id, row);
    }
    t.row("AVG", per_scheme.iter().map(|v| mean(v)).collect());

    println!("Figure 8: effective AMAT reduction vs BASE, % (higher is better)");
    println!("(memory stall cycles per load; see header comment for the metric)\n");
    println!("{}", t.render());
    let avg = |i: usize| mean(&per_scheme[i]).unwrap_or(0.0);
    println!("CAMPS-MOD vs BASE: {:+.1}%  (paper: +26%)", avg(1));
    println!(
        "CAMPS-MOD vs MMD : {:+.1} points  (paper: +16.3)",
        avg(1) - avg(0)
    );
    write_csv(
        "fig8_amat",
        "mix,scheme,effective_amat_reduction_pct,mean_read_latency,base_mean_read_latency",
        &csv_rows,
    );
}
