//! Ablation: open-page (Table I) versus closed-page row management, with
//! and without CAMPS-MOD. Closed page removes conflicts at the price of
//! row locality — the same trade CAMPS makes selectively, row by row.
//!
//! Run: `cargo bench -p camps-bench --bench ablate_page_policy`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::config::{PagePolicy, SystemConfig};

fn main() {
    let mut variants = Vec::new();
    for (pname, page) in [("open", PagePolicy::Open), ("closed", PagePolicy::Closed)] {
        for scheme in [SchemeKind::Nopf, SchemeKind::CampsMod] {
            let mut cfg = SystemConfig::paper_default();
            cfg.vault.page_policy = page;
            variants.push((format!("{pname} / {}", scheme.name()), cfg, scheme));
        }
    }
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: page policy (geomean IPC)\n");
    println!("{:>22}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>22}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_page_policy", "variant,HM1,LM1,MX1", &csv);
}
