//! Ablation: memory-side buffering versus aggressive cache pushing — the
//! design argument of §2.4.
//!
//! The paper keeps prefetched rows in the vault ("the prefetched data is
//! not proactively pushed towards upper level caches, thus avoiding the
//! cache pollution … It can be pushed only if requested"). This bench runs
//! the counter-design: every prefetched block is immediately pushed to the
//! shared LLC over the response links, paying link bandwidth and cache
//! pollution. If the paper's argument holds, pushing should not win.
//!
//! Run: `cargo bench -p camps-bench --bench ablate_push_llc`

use camps_bench::{ablation_sweep, write_csv, ABLATION_MIXES};
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;

fn main() {
    let mut variants = Vec::new();
    for (name, push) in [("memory-side buffer", false), ("push to LLC", true)] {
        for scheme in [SchemeKind::Base, SchemeKind::CampsMod] {
            let mut cfg = SystemConfig::paper_default();
            cfg.prefetch.push_to_llc = push;
            variants.push((format!("{name} / {}", scheme.name()), cfg, scheme));
        }
    }
    let rows = ablation_sweep(&variants, &ABLATION_MIXES);
    println!("Ablation: §2.4 — keep prefetches memory-side vs push to LLC (geomean IPC)\n");
    println!("{:>32}  {:>8}  {:>8}  {:>8}", "", "HM1", "LM1", "MX1");
    let mut csv = Vec::new();
    for (label, ipcs) in &rows {
        println!(
            "{label:>32}  {:>8.3}  {:>8.3}  {:>8.3}",
            ipcs[0], ipcs[1], ipcs[2]
        );
        csv.push(format!("{label},{},{},{}", ipcs[0], ipcs[1], ipcs[2]));
    }
    write_csv("ablate_push_llc", "variant,HM1,LM1,MX1", &csv);
}
