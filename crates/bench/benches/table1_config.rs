//! Table I — "Experimental Configuration": prints the default system
//! configuration used by every experiment, in the paper's layout, and
//! verifies it against the paper's stated values.
//!
//! Run: `cargo bench -p camps-bench --bench table1_config`

use camps_bench::experiments_dir;
use camps_types::config::SystemConfig;

fn main() {
    let c = SystemConfig::paper_default();
    c.validate().expect("paper configuration must validate");

    println!("Table I: experimental configuration\n");
    println!(
        "Processor    : {} cores @ {} GHz, issue width = {}, out-of-order (ROB {})",
        c.cpu.cores,
        c.cpu.freq_hz as f64 / 1e9,
        c.cpu.issue_width,
        c.cpu.rob_entries
    );
    println!(
        "L1 (I/D)     : {} KB pvt., {}-way, hit lat. = {} cycles",
        c.l1.size_bytes >> 10,
        c.l1.ways,
        c.l1.hit_latency
    );
    println!(
        "L2           : {} KB pvt., {}-way, hit lat. = {} cycles",
        c.l2.size_bytes >> 10,
        c.l2.ways,
        c.l2.hit_latency
    );
    println!(
        "L3           : {} MB shrd., {}-way, hit lat. = {} cycles, {} B line",
        c.l3.size_bytes >> 20,
        c.l3.ways,
        c.l3.hit_latency,
        c.l3.line_bytes
    );
    println!(
        "HMC          : {} vaults, {} banks/vault, {} B row buffer, {} rows/bank ({} GiB)",
        c.hmc.vaults,
        c.hmc.banks_per_vault,
        c.hmc.row_bytes,
        c.hmc.rows_per_bank,
        c.hmc.address_mapping().unwrap().capacity_bytes() >> 30
    );
    println!(
        "Vault ctl.   : DDR3-1600, queue size (R/W) = {}/{}, tRCD = {} tRP = {} tCL = {} cycles",
        c.vault.read_queue, c.vault.write_queue, c.dram.t_rcd, c.dram.t_rp, c.dram.t_cl
    );
    println!(
        "Serial links : {} links, {}+{} lanes full duplex, {} Gbps/lane",
        c.link.links, c.link.lanes, c.link.lanes, c.link.lane_gbps
    );
    println!(
        "PF buffer    : {} KB/vault, fully associative, {} KB line, hit latency = {} cycles",
        c.prefetch.entries * (c.hmc.row_bytes >> 10),
        c.hmc.row_bytes >> 10,
        c.prefetch.hit_latency
    );
    println!(
        "Tables       : RUT {} entries (threshold {}), CT {} entries",
        c.hmc.banks_per_vault, c.prefetch.rut_threshold, c.prefetch.ct_entries
    );
    println!(
        "Mapping      : {}; Scheduling: {:?}; Page policy: {:?}",
        c.hmc.mapping, c.vault.scheduler, c.vault.page_policy
    );

    // Assert the Table I values so this "bench" doubles as a regression
    // check on the default configuration.
    assert_eq!(c.cpu.cores, 8);
    assert_eq!(c.l3.size_bytes, 16 << 20);
    assert_eq!(c.hmc.vaults, 32);
    assert_eq!(c.hmc.banks_per_vault, 16);
    assert_eq!(c.dram.t_rcd, 11);
    assert_eq!(c.prefetch.entries, 16);
    assert_eq!(c.prefetch.hit_latency, 22);
    assert_eq!(c.prefetch.rut_threshold, 4);
    assert_eq!(c.prefetch.ct_entries, 32);

    let path = experiments_dir().join("table1_config.json");
    std::fs::write(&path, serde_json::to_string_pretty(&c).unwrap()).unwrap();
    println!("\n[json] {}", path.display());
}
