//! HMC interconnect substrate: FLIT-level packets, full-duplex serial
//! links, and the logic-base crossbar.
//!
//! The paper's Table I: 4 serial links, 16 input + 16 output lanes each
//! (full duplex), 12.5 Gbps per lane. Requests from the host memory
//! controller are packetized into 16-byte FLITs (HMC 2.1 framing: one
//! header/tail FLIT plus data FLITs), serialized onto a link, routed
//! through the crossbar to a vault, and responses travel the reverse path.
//! Prefetch traffic never touches these links — that asymmetry is the
//! paper's core motivation for *memory-side* prefetching.

#![warn(missing_docs)]

pub mod crossbar;
pub mod cube_link;
pub mod packet;
pub mod serdes;

pub use crossbar::Crossbar;
pub use cube_link::{CubeFabric, HopLink};
pub use packet::{Packet, PacketKind};
pub use serdes::{LinkSet, SerialLink};
