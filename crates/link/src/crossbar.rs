//! The logic-base crossbar that routes packets between serial links and
//! vault controllers.
//!
//! "All the serial links are connected to the vault controllers through a
//! crossbar switch that routes the request packet coming from the
//! processor to a particular vault controller" (§2.1). The model adds a
//! fixed traversal latency and serializes packets per destination port
//! (one packet per cycle per vault input), which captures the only
//! contention that matters at this fan-out: hot vaults backing up.

use camps_types::clock::Cycle;
use camps_types::wake::Wake;
use serde::{Deserialize, Serialize};

/// The crossbar switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossbar {
    latency: Cycle,
    /// Per-destination-port next-free cycle.
    port_free: Vec<Cycle>,
    // Statistics.
    routed: u64,
    contended: u64,
}

impl Crossbar {
    /// A crossbar with `ports` destination ports (vaults on the request
    /// path, links on the response path) and fixed traversal `latency`.
    ///
    /// # Panics
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn new(ports: u32, latency: Cycle) -> Self {
        assert!(ports > 0, "crossbar needs ports");
        Self {
            latency,
            port_free: vec![0; ports as usize],
            routed: 0,
            contended: 0,
        }
    }

    /// Routes a packet arriving at `now` toward `port`; returns when it
    /// exits the crossbar.
    ///
    /// # Panics
    /// Panics if `port` is out of range.
    pub fn route(&mut self, port: usize, now: Cycle) -> Cycle {
        let free = self.port_free[port];
        let start = now.max(free);
        if start > now {
            self.contended += 1;
        }
        self.port_free[port] = start + 1; // one packet per cycle per port
        self.routed += 1;
        start + self.latency
    }

    /// Lifetime (packets routed, packets that waited on a busy port).
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.routed, self.contended)
    }
}

impl Wake for Crossbar {
    /// The crossbar holds no pending work of its own — routing happens
    /// synchronously inside [`Crossbar::route`] and in-flight packets live
    /// in the cube's delivery heaps. It never needs a wake.
    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uncontended_route_is_fixed_latency() {
        let mut x = Crossbar::new(32, 3);
        assert_eq!(x.route(5, 100), 103);
        assert_eq!(x.stats(), (1, 0));
    }

    #[test]
    fn same_port_serializes() {
        let mut x = Crossbar::new(32, 3);
        assert_eq!(x.route(0, 10), 13);
        assert_eq!(x.route(0, 10), 14); // waits one cycle
        assert_eq!(x.route(0, 10), 15);
        assert_eq!(x.stats(), (3, 2));
    }

    #[test]
    fn different_ports_independent() {
        let mut x = Crossbar::new(32, 3);
        assert_eq!(x.route(0, 10), 13);
        assert_eq!(x.route(1, 10), 13);
        assert_eq!(x.stats().1, 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_port_panics() {
        let mut x = Crossbar::new(4, 3);
        let _ = x.route(4, 0);
    }

    proptest! {
        #[test]
        fn exits_are_monotone_per_port(times in prop::collection::vec(0u64..1000, 1..50)) {
            let mut x = Crossbar::new(1, 3);
            let mut sorted = times.clone();
            sorted.sort_unstable();
            let mut last_exit = 0;
            for t in sorted {
                let exit = x.route(0, t);
                prop_assert!(exit > last_exit, "port must serialize");
                prop_assert!(exit >= t + 3);
                last_exit = exit;
            }
        }
    }
}
