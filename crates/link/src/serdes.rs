//! Serial-link timing: serialization, propagation, and token flow control.
//!
//! Each of the 4 links is full duplex: the request direction (host → cube)
//! and response direction (cube → host) serialize independently on their
//! own 16-lane bundles. A link serializes one packet at a time; a packet of
//! `n` FLITs occupies the serializer for `n × flit_cycles` and is delivered
//! `propagation_cycles` after its last FLIT leaves. Token-based flow
//! control bounds the FLITs in flight per direction (HMC 2.1 link-layer
//! credits); the receiver returns tokens when it drains a packet.

use crate::packet::Packet;
use camps_types::clock::{serialization_cycles, Cycle};
use camps_types::config::LinkConfig;
use camps_types::wake::Wake;
use serde::{Deserialize, Serialize};

/// One direction of one serial link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SerialLink {
    flit_cycles: Cycle,
    propagation: Cycle,
    busy_until: Cycle,
    tokens_free: u32,
    tokens_total: u32,
    /// Idle threshold before entering the low-power state (0 = never).
    sleep_after_idle: Cycle,
    /// Re-training penalty when waking.
    wake_cycles: Cycle,
    /// Cycle of the last serialization activity.
    last_active: Cycle,
    // Statistics.
    packets: u64,
    flits: u64,
    busy_cycles: Cycle,
    wakeups: u64,
    asleep_cycles: Cycle,
}

impl SerialLink {
    /// Builds one link direction from the link configuration for a CPU at
    /// `cpu_hz`.
    #[must_use]
    pub fn new(cfg: &LinkConfig, cpu_hz: u64) -> Self {
        let flit_cycles =
            serialization_cycles(u64::from(cfg.flit_bytes), cfg.lanes, cfg.lane_gbps, cpu_hz)
                .max(1);
        Self {
            flit_cycles,
            propagation: cfg.propagation_cycles,
            busy_until: 0,
            tokens_free: cfg.tokens,
            tokens_total: cfg.tokens,
            sleep_after_idle: cfg.sleep_after_idle,
            wake_cycles: cfg.wake_cycles,
            last_active: 0,
            packets: 0,
            flits: 0,
            busy_cycles: 0,
            wakeups: 0,
            asleep_cycles: 0,
        }
    }

    /// True if the link would be in its low-power state at `now`
    /// (power management enabled and idle past the threshold).
    #[must_use]
    pub fn is_asleep(&self, now: Cycle) -> bool {
        self.sleep_after_idle > 0
            && now > self.busy_until
            && now.saturating_sub(self.last_active.max(self.busy_until)) > self.sleep_after_idle
    }

    /// Cycles to serialize one FLIT on this link.
    #[must_use]
    pub fn flit_cycles(&self) -> Cycle {
        self.flit_cycles
    }

    /// True if the link has credits for `flits` more FLITs.
    #[must_use]
    pub fn has_tokens(&self, flits: u32) -> bool {
        self.tokens_free >= flits
    }

    /// Flow-control credits currently available (watchdog diagnostics: a
    /// link pinned at zero free tokens is a flow-control deadlock).
    #[must_use]
    pub fn tokens_free(&self) -> u32 {
        self.tokens_free
    }

    /// Earliest cycle the serializer is free.
    #[must_use]
    pub fn ready_at(&self) -> Cycle {
        self.busy_until
    }

    /// Sends `packet` no earlier than `now`; returns the delivery cycle at
    /// the far end. Consumes `packet.flits` tokens — the receiver must
    /// return them via [`SerialLink::release`] when it drains the packet.
    ///
    /// # Panics
    /// Panics if flow-control tokens are exhausted (callers gate on
    /// [`SerialLink::has_tokens`]).
    pub fn send(&mut self, packet: &Packet, now: Cycle) -> Cycle {
        assert!(
            self.has_tokens(packet.flits),
            "link out of tokens: {} free, {} needed",
            self.tokens_free,
            packet.flits
        );
        self.tokens_free -= packet.flits;
        let mut start = now.max(self.busy_until);
        if self.is_asleep(now) {
            // Wake the SerDes: pay the re-training penalty first.
            start += self.wake_cycles;
            self.wakeups += 1;
            self.asleep_cycles +=
                now.saturating_sub(self.last_active.max(self.busy_until) + self.sleep_after_idle);
        }
        self.last_active = start;
        let serialized = start + Cycle::from(packet.flits) * self.flit_cycles;
        self.busy_until = serialized;
        self.busy_cycles += serialized - start;
        self.packets += 1;
        self.flits += u64::from(packet.flits);
        serialized + self.propagation
    }

    /// Returns `flits` flow-control tokens (receiver drained a packet).
    ///
    /// # Panics
    /// Panics on token over-release (simulator bug).
    pub fn release(&mut self, flits: u32) {
        self.tokens_free += flits;
        assert!(
            self.tokens_free <= self.tokens_total,
            "token over-release: {} > {}",
            self.tokens_free,
            self.tokens_total
        );
    }

    /// Lifetime (packets, FLITs, serializer-busy cycles).
    #[must_use]
    pub fn stats(&self) -> (u64, u64, Cycle) {
        (self.packets, self.flits, self.busy_cycles)
    }

    /// Power-management statistics: (wakeups, cycles spent asleep before
    /// each wake, accumulated).
    #[must_use]
    pub fn power_stats(&self) -> (u64, Cycle) {
        (self.wakeups, self.asleep_cycles)
    }
}

impl Wake for SerialLink {
    /// Links are passive: state only changes when a packet is sent on them
    /// or tokens are released, both driven by their owner. The only timing
    /// edge is the serializer freeing up.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        (self.busy_until > now).then_some(self.busy_until)
    }
}

/// The cube's full set of links for one direction, with least-loaded
/// selection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSet {
    links: Vec<SerialLink>,
}

impl LinkSet {
    /// Builds `cfg.links` link directions.
    #[must_use]
    pub fn new(cfg: &LinkConfig, cpu_hz: u64) -> Self {
        Self {
            links: (0..cfg.links)
                .map(|_| SerialLink::new(cfg, cpu_hz))
                .collect(),
        }
    }

    /// Number of links.
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True if the set is empty (never, for valid configs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Index of the link that could start serializing soonest among those
    /// with tokens for `flits`; `None` if every link is token-blocked.
    #[must_use]
    pub fn pick(&self, flits: u32) -> Option<usize> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.has_tokens(flits))
            .min_by_key(|(_, l)| l.ready_at())
            .map(|(i, _)| i)
    }

    /// Sends `packet` on the best available link at `now`; returns
    /// `(link_index, delivery_cycle)`, or `None` if all links are
    /// token-blocked (caller retries next cycle).
    pub fn send(&mut self, packet: &Packet, now: Cycle) -> Option<(usize, Cycle)> {
        let idx = self.pick(packet.flits)?;
        let delivery = self.links[idx].send(packet, now);
        Some((idx, delivery))
    }

    /// Returns tokens to link `idx`.
    pub fn release(&mut self, idx: usize, flits: u32) {
        self.links[idx].release(flits);
    }

    /// Aggregate (packets, FLITs, busy cycles) across the set.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, Cycle) {
        self.links.iter().fold((0, 0, 0), |(p, f, b), l| {
            let (lp, lf, lb) = l.stats();
            (p + lp, f + lf, b + lb)
        })
    }

    /// Per-link free-token counts (watchdog diagnostics).
    #[must_use]
    pub fn tokens_free(&self) -> Vec<u32> {
        self.links.iter().map(SerialLink::tokens_free).collect()
    }
}

impl Wake for LinkSet {
    /// Earliest serializer-free edge across the set.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.links.iter().filter_map(|l| l.next_event(now)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::addr::PhysAddr;
    use camps_types::config::SystemConfig;
    use camps_types::request::{AccessKind, CoreId, MemRequest, RequestId};

    fn cfg() -> camps_types::config::LinkConfig {
        SystemConfig::paper_default().link
    }

    fn packet(flits: u32) -> Packet {
        Packet {
            kind: crate::packet::PacketKind::ReadResp,
            request: MemRequest {
                id: RequestId(0),
                addr: PhysAddr(0),
                kind: AccessKind::Read,
                core: CoreId(0),
                created_at: 0,
            },
            flits,
        }
    }

    #[test]
    fn paper_flit_time_is_two_cycles() {
        let l = SerialLink::new(&cfg(), 3_000_000_000);
        // 16 B over 16 × 12.5 Gbps = 0.64 ns = 1.92 cycles → 2.
        assert_eq!(l.flit_cycles(), 2);
    }

    #[test]
    fn delivery_includes_serialization_and_propagation() {
        let mut l = SerialLink::new(&cfg(), 3_000_000_000);
        let d = l.send(&packet(5), 100);
        // 5 FLITs × 2 cycles + 10 propagation.
        assert_eq!(d, 100 + 10 + 10);
    }

    #[test]
    fn back_to_back_packets_serialize_in_order() {
        let mut l = SerialLink::new(&cfg(), 3_000_000_000);
        let d1 = l.send(&packet(5), 0);
        let d2 = l.send(&packet(1), 0);
        assert_eq!(d1, 20);
        assert_eq!(d2, 10 + 2 + 10); // starts after the first finishes
        assert!(d2 > d1 - 10 + 2 - 1);
        let (p, f, busy) = l.stats();
        assert_eq!((p, f), (2, 6));
        assert_eq!(busy, 12);
    }

    #[test]
    fn tokens_block_and_release() {
        let mut c = cfg();
        c.tokens = 6;
        let mut l = SerialLink::new(&c, 3_000_000_000);
        l.send(&packet(5), 0);
        assert!(!l.has_tokens(5));
        assert!(l.has_tokens(1));
        l.release(5);
        assert!(l.has_tokens(5));
    }

    #[test]
    #[should_panic(expected = "out of tokens")]
    fn sending_without_tokens_panics() {
        let mut c = cfg();
        c.tokens = 4;
        let mut l = SerialLink::new(&c, 3_000_000_000);
        l.send(&packet(5), 0);
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn over_release_panics() {
        let mut l = SerialLink::new(&cfg(), 3_000_000_000);
        l.release(1);
    }

    #[test]
    fn linkset_balances_load() {
        let mut s = LinkSet::new(&cfg(), 3_000_000_000);
        assert_eq!(s.len(), 4);
        // Four packets land on four different links: same delivery time.
        let deliveries: Vec<_> = (0..4).map(|_| s.send(&packet(5), 0).unwrap()).collect();
        let links: std::collections::HashSet<usize> = deliveries.iter().map(|&(i, _)| i).collect();
        assert_eq!(links.len(), 4);
        assert!(deliveries.iter().all(|&(_, d)| d == deliveries[0].1));
        // A fifth packet queues behind one of them.
        let (_, d5) = s.send(&packet(5), 0).unwrap();
        assert!(d5 > deliveries[0].1);
    }

    #[test]
    fn sleeping_link_pays_wake_penalty_once() {
        let mut c = cfg();
        c.sleep_after_idle = 100;
        c.wake_cycles = 50;
        let mut l = SerialLink::new(&c, 3_000_000_000);
        // First packet at t=0: link starts awake (last_active = 0).
        let d0 = l.send(&packet(1), 0);
        assert_eq!(d0, 2 + 10, "no penalty while fresh");
        // Long idle → asleep; next send pays 50 cycles of re-training.
        assert!(l.is_asleep(500));
        let d1 = l.send(&packet(1), 500);
        assert_eq!(d1, 500 + 50 + 2 + 10);
        let (wakeups, _) = l.power_stats();
        assert_eq!(wakeups, 1);
        // Back-to-back traffic stays awake.
        assert!(!l.is_asleep(d1 - 10));
        let d2 = l.send(&packet(1), d1 - 10);
        assert!(d2 < d1 + 20);
    }

    #[test]
    fn disabled_power_management_never_sleeps() {
        let l = SerialLink::new(&cfg(), 3_000_000_000);
        assert!(!l.is_asleep(1_000_000_000));
    }

    proptest::proptest! {
        // Tokens are conserved: free + in-flight == total, and deliveries
        // are monotone in send order on a single link.
        #[test]
        fn token_conservation_under_random_traffic(
            sizes in proptest::collection::vec(1u32..6, 1..60)
        ) {
            let mut c = cfg();
            c.tokens = 24;
            let mut l = SerialLink::new(&c, 3_000_000_000);
            let mut outstanding: std::collections::VecDeque<u32> = Default::default();
            let mut in_flight = 0u32;
            let mut last_delivery = 0;
            for (i, &flits) in sizes.iter().enumerate() {
                if l.has_tokens(flits) {
                    let d = l.send(&packet(flits), i as u64);
                    proptest::prop_assert!(d >= last_delivery, "deliveries reorder");
                    last_delivery = d;
                    outstanding.push_back(flits);
                    in_flight += flits;
                    proptest::prop_assert!(in_flight <= 24);
                } else if let Some(f) = outstanding.pop_front() {
                    l.release(f);
                    in_flight -= f;
                }
            }
            while let Some(f) = outstanding.pop_front() {
                l.release(f);
                in_flight -= f;
            }
            proptest::prop_assert_eq!(in_flight, 0);
            proptest::prop_assert!(l.has_tokens(24), "all tokens must return");
        }
    }

    #[test]
    fn linkset_none_when_all_blocked() {
        let mut c = cfg();
        c.tokens = 5;
        let mut s = LinkSet::new(&c, 3_000_000_000);
        for _ in 0..4 {
            assert!(s.send(&packet(5), 0).is_some());
        }
        assert!(s.send(&packet(5), 0).is_none());
        s.release(2, 5);
        let (idx, _) = s.send(&packet(5), 0).unwrap();
        assert_eq!(idx, 2);
    }
}
