//! Inter-cube interconnect: the hop links that wire a pool of cubes into
//! a chain or star behind the host-attached cube.
//!
//! The HMC spec's scaling story is cube chaining: cube 0 owns the host
//! links and every further cube is reached over pass-through hops, each a
//! full-duplex serial bundle just like the host links. This module reuses
//! the FLIT serialization model from [`crate::serdes`] — a packet of `n`
//! FLITs occupies a hop's serializer for `n × flit_cycles` and lands
//! `hop_cycles` after its last FLIT — but store-and-forward across
//! multiple hops: a chained cube `c` pays the full serialize+propagate
//! cost at each of its `c` edges.
//!
//! Flow control is handled one level up: the topology layer bounds the
//! requests in transit per cube against that cube's headroom, so hop
//! links themselves never need token credits and can never deadlock.

use camps_types::clock::{serialization_cycles, Cycle};
use camps_types::config::{LinkConfig, TopologyConfig, TopologyKind};
use camps_types::wake::Wake;
use serde::{Deserialize, Serialize};

/// One direction of one inter-cube edge: a serializer plus fixed
/// propagation, store-and-forward.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopLink {
    flit_cycles: Cycle,
    hop_cycles: Cycle,
    busy_until: Cycle,
    // Statistics.
    packets: u64,
    flits: u64,
    busy_cycles: Cycle,
}

impl HopLink {
    fn new(flit_cycles: Cycle, hop_cycles: Cycle) -> Self {
        Self {
            flit_cycles,
            hop_cycles,
            busy_until: 0,
            packets: 0,
            flits: 0,
            busy_cycles: 0,
        }
    }

    /// Serializes `flits` FLITs no earlier than `now`; returns the cycle
    /// the packet lands at the far end of this edge.
    pub fn send(&mut self, flits: u32, now: Cycle) -> Cycle {
        let start = now.max(self.busy_until);
        let serialized = start + Cycle::from(flits) * self.flit_cycles;
        self.busy_until = serialized;
        self.busy_cycles += serialized - start;
        self.packets += 1;
        self.flits += u64::from(flits);
        serialized + self.hop_cycles
    }

    /// Earliest cycle the serializer is free.
    #[must_use]
    pub fn ready_at(&self) -> Cycle {
        self.busy_until
    }

    /// Lifetime (packets, FLITs, serializer-busy cycles).
    #[must_use]
    pub fn stats(&self) -> (u64, u64, Cycle) {
        (self.packets, self.flits, self.busy_cycles)
    }
}

impl Wake for HopLink {
    /// Hops are passive; the only timing edge is the serializer freeing.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        (self.busy_until > now).then_some(self.busy_until)
    }
}

/// The full inter-cube fabric: `cubes - 1` full-duplex edges arranged as
/// a chain or star, with a routing table from cube id to the edges a
/// packet traverses.
///
/// Cube 0 is host-attached in both topologies and is always zero hops
/// away — a single-cube fabric has no edges at all, so the 1-cube
/// machine spends no cycles here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CubeFabric {
    kind: TopologyKind,
    cubes: u32,
    /// Host→cube direction, one per edge.
    req_hops: Vec<HopLink>,
    /// Cube→host direction, one per edge.
    resp_hops: Vec<HopLink>,
}

impl CubeFabric {
    /// Builds the fabric for `topo` with hop serializers matching the
    /// host-link FLIT rate from `link` at `cpu_hz`.
    #[must_use]
    pub fn new(topo: &TopologyConfig, link: &LinkConfig, cpu_hz: u64) -> Self {
        let flit_cycles = serialization_cycles(
            u64::from(link.flit_bytes),
            link.lanes,
            link.lane_gbps,
            cpu_hz,
        )
        .max(1);
        let edges = topo.cubes.saturating_sub(1) as usize;
        Self {
            kind: topo.kind,
            cubes: topo.cubes,
            req_hops: (0..edges)
                .map(|_| HopLink::new(flit_cycles, topo.hop_cycles))
                .collect(),
            resp_hops: (0..edges)
                .map(|_| HopLink::new(flit_cycles, topo.hop_cycles))
                .collect(),
        }
    }

    /// Number of cubes this fabric connects.
    #[must_use]
    pub fn cubes(&self) -> u32 {
        self.cubes
    }

    /// Interconnect shape.
    #[must_use]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of edges a packet to `cube` traverses (0 for the
    /// host-attached cube 0 in both topologies).
    #[must_use]
    pub fn hops(&self, cube: u16) -> u32 {
        match self.kind {
            TopologyKind::Chain => u32::from(cube),
            TopologyKind::Star => u32::from(cube != 0),
        }
    }

    /// Edge indices traversed host→`cube`, in order.
    fn route(&self, cube: u16) -> std::ops::Range<usize> {
        let c = usize::from(cube);
        match self.kind {
            TopologyKind::Chain => 0..c,
            TopologyKind::Star => c.saturating_sub(1)..c,
        }
    }

    /// Ships a request of `flits` FLITs toward `cube`, store-and-forward
    /// across every edge on its route; returns the arrival cycle.
    ///
    /// # Panics
    /// Panics if `cube` is outside the pool (simulator bug).
    pub fn send_request(&mut self, cube: u16, flits: u32, now: Cycle) -> Cycle {
        assert!(u32::from(cube) < self.cubes, "cube {cube} out of range");
        self.route(cube)
            .fold(now, |t, e| self.req_hops[e].send(flits, t))
    }

    /// Ships a response of `flits` FLITs from `cube` back to the host,
    /// traversing the route in reverse; returns the arrival cycle.
    ///
    /// # Panics
    /// Panics if `cube` is outside the pool (simulator bug).
    pub fn send_response(&mut self, cube: u16, flits: u32, now: Cycle) -> Cycle {
        assert!(u32::from(cube) < self.cubes, "cube {cube} out of range");
        self.route(cube)
            .rev()
            .fold(now, |t, e| self.resp_hops[e].send(flits, t))
    }

    /// Aggregate (packets, FLITs, serializer-busy cycles) across both
    /// directions of every edge.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, Cycle) {
        self.req_hops
            .iter()
            .chain(&self.resp_hops)
            .fold((0, 0, 0), |(p, f, b), l| {
                let (lp, lf, lb) = l.stats();
                (p + lp, f + lf, b + lb)
            })
    }
}

impl Wake for CubeFabric {
    /// Earliest serializer-free edge across the fabric.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.req_hops
            .iter()
            .chain(&self.resp_hops)
            .filter_map(|l| l.next_event(now))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::config::SystemConfig;

    const CPU_HZ: u64 = 3_000_000_000;

    fn fabric(cubes: u32, kind: TopologyKind) -> CubeFabric {
        let cfg = SystemConfig::paper_default();
        let topo = TopologyConfig {
            cubes,
            kind,
            ..TopologyConfig::default()
        };
        CubeFabric::new(&topo, &cfg.link, CPU_HZ)
    }

    #[test]
    fn single_cube_fabric_has_no_edges_and_no_latency() {
        for kind in [TopologyKind::Chain, TopologyKind::Star] {
            let mut f = fabric(1, kind);
            assert_eq!(f.hops(0), 0);
            assert_eq!(f.send_request(0, 1, 123), 123);
            assert_eq!(f.send_response(0, 5, 456), 456);
            assert_eq!(f.stats(), (0, 0, 0));
            assert_eq!(f.next_event(0), None);
        }
    }

    #[test]
    fn chain_latency_grows_with_cube_index() {
        let mut f = fabric(4, TopologyKind::Chain);
        // Paper link config: 2 cycles/FLIT, 10 cycles/hop. 1-FLIT request
        // to cube c pays c × (2 + 10).
        assert_eq!(f.hops(2), 2);
        assert_eq!(f.send_request(1, 1, 0), 12);
        let mut f = fabric(4, TopologyKind::Chain);
        assert_eq!(f.send_request(3, 1, 0), 36);
    }

    #[test]
    fn star_is_one_hop_to_every_remote_cube() {
        let mut f = fabric(4, TopologyKind::Star);
        for cube in 1..4u16 {
            assert_eq!(f.hops(cube), 1);
        }
        // Distinct cubes use distinct dedicated edges: no queueing.
        assert_eq!(f.send_request(1, 1, 0), 12);
        assert_eq!(f.send_request(2, 1, 0), 12);
        assert_eq!(f.send_request(3, 1, 0), 12);
    }

    #[test]
    fn chain_shares_the_first_edge() {
        let mut f = fabric(4, TopologyKind::Chain);
        // Both packets cross edge 0; the second serializes behind the
        // first there, then pays its remaining hops.
        let d1 = f.send_request(1, 5, 0);
        let d2 = f.send_request(2, 5, 0);
        assert_eq!(d1, 20);
        // Waits 10 for edge 0's serializer, crosses it (arrives 30), then
        // re-serializes the full packet on edge 1: 30 + 10 + 10.
        assert_eq!(d2, 50);
    }

    #[test]
    fn responses_use_their_own_direction() {
        let mut f = fabric(2, TopologyKind::Chain);
        let req = f.send_request(1, 1, 0);
        let resp = f.send_response(1, 5, 0);
        // Full duplex: the response does not queue behind the request.
        assert_eq!(req, 12);
        assert_eq!(resp, 20);
    }

    #[test]
    fn wake_reports_earliest_busy_edge() {
        let mut f = fabric(3, TopologyKind::Chain);
        assert_eq!(f.next_event(0), None);
        f.send_request(2, 5, 0);
        // Edge 0 serializer frees at 10, edge 1 at 30.
        assert_eq!(f.next_event(0), Some(10));
        assert_eq!(f.next_event(15), Some(30));
        assert_eq!(f.next_event(30), None);
    }

    #[test]
    fn fabric_round_trips_through_snapshot_value() {
        use serde::{Deserialize as _, Serialize as _};
        let mut f = fabric(4, TopologyKind::Star);
        f.send_request(3, 5, 7);
        f.send_response(2, 1, 9);
        let v = f.to_value();
        let back = CubeFabric::from_value(&v).unwrap();
        assert_eq!(back, f);
    }
}
