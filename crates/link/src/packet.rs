//! HMC 2.1-style packet framing.
//!
//! Every packet carries one header + tail FLIT of 16 bytes; data payloads
//! add `ceil(bytes / 16)` FLITs. A 64 B read response is therefore 5 FLITs
//! (80 B on the wire), while a read request or write acknowledgment is a
//! single FLIT — the framing asymmetry that makes response bandwidth the
//! scarce link resource.

use camps_types::config::LinkConfig;
use camps_types::request::{AccessKind, MemRequest};
use serde::{Deserialize, Serialize};

/// Packet classes crossing the serial links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PacketKind {
    /// Host → cube: 64 B read request (header/tail only).
    ReadReq,
    /// Host → cube: 64 B write request (header/tail + data).
    WriteReq,
    /// Cube → host: read completion with data.
    ReadResp,
    /// Cube → host: write acknowledgment (header/tail only).
    WriteResp,
}

impl PacketKind {
    /// Data payload bytes carried by this packet class for a 64 B block.
    #[must_use]
    pub fn payload_bytes(self, block_bytes: u32) -> u32 {
        match self {
            Self::ReadReq | Self::WriteResp => 0,
            Self::WriteReq | Self::ReadResp => block_bytes,
        }
    }

    /// True for host → cube packets.
    #[must_use]
    pub fn is_request(self) -> bool {
        matches!(self, Self::ReadReq | Self::WriteReq)
    }
}

/// A framed packet: the carried demand request plus its wire size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Packet {
    /// Packet class.
    pub kind: PacketKind,
    /// The demand request this packet carries (or answers).
    pub request: MemRequest,
    /// Wire size in FLITs.
    pub flits: u32,
}

impl Packet {
    /// Frames the host → cube packet for `request` (block size
    /// `block_bytes`).
    #[must_use]
    pub fn request(request: MemRequest, link: &LinkConfig, block_bytes: u32) -> Self {
        let kind = match request.kind {
            AccessKind::Read => PacketKind::ReadReq,
            AccessKind::Write => PacketKind::WriteReq,
        };
        Self {
            kind,
            request,
            flits: link.flits_for(kind.payload_bytes(block_bytes)),
        }
    }

    /// Frames the cube → host response for `request`.
    #[must_use]
    pub fn response(request: MemRequest, link: &LinkConfig, block_bytes: u32) -> Self {
        let kind = match request.kind {
            AccessKind::Read => PacketKind::ReadResp,
            AccessKind::Write => PacketKind::WriteResp,
        };
        Self {
            kind,
            request,
            flits: link.flits_for(kind.payload_bytes(block_bytes)),
        }
    }

    /// Wire FLITs of the host → cube packet a request of `kind` would
    /// frame — without building the packet. Wake scans ask this per
    /// queued request every fold; answering from the access kind alone
    /// keeps the host-profiler's `wake_scan` bin honest.
    #[must_use]
    pub fn request_flits(kind: AccessKind, link: &LinkConfig, block_bytes: u32) -> u32 {
        let kind = match kind {
            AccessKind::Read => PacketKind::ReadReq,
            AccessKind::Write => PacketKind::WriteReq,
        };
        link.flits_for(kind.payload_bytes(block_bytes))
    }

    /// Wire FLITs of the cube → host response for an access of `kind`,
    /// without building the packet.
    #[must_use]
    pub fn response_flits(kind: AccessKind, link: &LinkConfig, block_bytes: u32) -> u32 {
        let kind = match kind {
            AccessKind::Read => PacketKind::ReadResp,
            AccessKind::Write => PacketKind::WriteResp,
        };
        link.flits_for(kind.payload_bytes(block_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camps_types::addr::PhysAddr;
    use camps_types::config::SystemConfig;
    use camps_types::request::{CoreId, RequestId};

    fn req(kind: AccessKind) -> MemRequest {
        MemRequest {
            id: RequestId(1),
            addr: PhysAddr(0x1000),
            kind,
            core: CoreId(0),
            created_at: 0,
        }
    }

    #[test]
    fn read_request_is_one_flit() {
        let c = SystemConfig::paper_default();
        let p = Packet::request(req(AccessKind::Read), &c.link, 64);
        assert_eq!(p.kind, PacketKind::ReadReq);
        assert_eq!(p.flits, 1);
    }

    #[test]
    fn write_request_carries_data() {
        let c = SystemConfig::paper_default();
        let p = Packet::request(req(AccessKind::Write), &c.link, 64);
        assert_eq!(p.kind, PacketKind::WriteReq);
        assert_eq!(p.flits, 5); // 1 + 64/16
    }

    #[test]
    fn read_response_carries_data() {
        let c = SystemConfig::paper_default();
        let p = Packet::response(req(AccessKind::Read), &c.link, 64);
        assert_eq!(p.kind, PacketKind::ReadResp);
        assert_eq!(p.flits, 5);
    }

    #[test]
    fn write_response_is_one_flit() {
        let c = SystemConfig::paper_default();
        let p = Packet::response(req(AccessKind::Write), &c.link, 64);
        assert_eq!(p.kind, PacketKind::WriteResp);
        assert_eq!(p.flits, 1);
    }

    #[test]
    fn flit_helpers_match_framed_packets() {
        let c = SystemConfig::paper_default();
        for kind in [AccessKind::Read, AccessKind::Write] {
            assert_eq!(
                Packet::request_flits(kind, &c.link, 64),
                Packet::request(req(kind), &c.link, 64).flits
            );
            assert_eq!(
                Packet::response_flits(kind, &c.link, 64),
                Packet::response(req(kind), &c.link, 64).flits
            );
        }
    }

    #[test]
    fn request_direction_classification() {
        assert!(PacketKind::ReadReq.is_request());
        assert!(PacketKind::WriteReq.is_request());
        assert!(!PacketKind::ReadResp.is_request());
        assert!(!PacketKind::WriteResp.is_request());
    }
}
