//! Host-side self-profiler: where do the *simulator's* cycles go?
//!
//! PR 5's tracer observes the simulated machine; this module observes
//! the simulator. The system layer wraps every subsystem tick in a
//! scoped span ([`Profiler::enter`] / [`Profiler::exit`]) or a
//! fence-post lap ([`Profiler::stamp`] / [`Profiler::lap`]), and the
//! profiler aggregates them into a call-tree keyed by [`Comp`] with
//! inclusive/exclusive wall nanoseconds and invocation counts. The
//! event engine additionally reports *dispatch accounting*: which
//! wake source won each jump, how many cycles the jump coalesced, and
//! whether the resulting tick was productive or spurious.
//!
//! Two span disciplines, chosen per call site:
//!
//! * **`enter`/`exit`** for phases that contain nested spans. The pair
//!   maintains a stack; a child's time is credited to the parent's
//!   inclusive total but subtracted from its exclusive total.
//! * **`stamp`/`lap`** for runs of *leaf* phases. One clock read per
//!   boundary instead of two per phase — `lap` charges `now - prev`
//!   to a leaf child of the open frame and returns `now` for the next
//!   lap in the chain. Never wrap a phase containing inner spans in a
//!   lap: the inner time would be counted twice.
//!
//! Like [`TraceHandle`](crate::TraceHandle), the profiler compiles out:
//! with the `enabled` feature off it is a zero-sized unit struct and
//! every method is an inline no-op, so `RunResult` stays bit-identical
//! and the hot loop pays nothing. With the feature on but the profiler
//! off (the default), every method is one branch on a `bool`.
//!
//! The aggregate ([`ProfileSummary`]) is plain serializable data,
//! compiled in **both** feature modes: it rides in `RunResult.profile`
//! and renders as a summary table or as collapsed folded-stack text
//! (`component;sub;leaf ns`) loadable by standard flamegraph tooling.

#[cfg(not(feature = "enabled"))]
use camps_types::wake::WakeSource;
use serde::{Deserialize, Serialize};

/// A profiled simulator component. Variants mirror the span tree the
/// system layer builds; [`Comp::name`] is the stable label used in
/// summaries, folded stacks, and `BENCH_profile.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the names below are the documentation
pub enum Comp {
    /// The whole measured run loop (root of the tree).
    RunLoop,
    /// Event engine: folding `next_event` answers into a wake target.
    WakeScan,
    /// One engine iteration (tick body).
    RunStep,
    /// Core issue/retire loop (includes cache lookups and MSHR work).
    CoreRetire,
    /// Cache hierarchy probe (L1→L2→L3) on the demand path.
    CacheLookup,
    /// MSHR allocate/merge/reject bookkeeping.
    Mshr,
    /// Memory subsystem tick (everything below the host queue).
    MemTick,
    /// Host writeback-queue drain.
    WbDrain,
    /// Inter-cube interconnect (multi-cube machines only).
    CubeFabric,
    /// One HMC cube tick (links + crossbar + vaults).
    HmcTick,
    /// Serdes link set: token return, request/response launch+delivery.
    SerdesLinks,
    /// Crossbar delivery and vault-queue retry.
    Crossbar,
    /// Prefetch-buffer lookup on request admission (`try_enqueue`).
    PfLookup,
    /// Vault-controller tick loop (all vaults of one cube).
    VaultTick,
    /// Refresh deadline scan and all-bank refresh issue.
    RefreshScan,
    /// Prefetch-buffer fetch completion and resident-row service.
    BufferServe,
    /// Bank-model maintenance (precharge sweep).
    BankModel,
    /// DRAM command scheduler (FR-FCFS issue scan).
    IssueScan,
    /// Prefetch-scheme training/decision calls.
    PfTrain,
    /// Background row-fetch streaming into the prefetch buffer.
    PfFetch,
    /// Vault writeback engine.
    WbEngine,
    /// Response queue pop toward the crossbar.
    RespPop,
    /// Cache fill + waiter wakeup on the response path.
    CacheFill,
    /// Periodic metrics/snapshot sampling.
    Sampler,
}

impl Comp {
    /// Stable snake_case label for exports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Comp::RunLoop => "run_loop",
            Comp::WakeScan => "wake_scan",
            Comp::RunStep => "run_step",
            Comp::CoreRetire => "core_retire",
            Comp::CacheLookup => "cache_lookup",
            Comp::Mshr => "mshr",
            Comp::MemTick => "mem_tick",
            Comp::WbDrain => "wb_drain",
            Comp::CubeFabric => "cube_fabric",
            Comp::HmcTick => "hmc_tick",
            Comp::SerdesLinks => "serdes_links",
            Comp::Crossbar => "crossbar",
            Comp::PfLookup => "pf_lookup",
            Comp::VaultTick => "vault_tick",
            Comp::RefreshScan => "refresh_scan",
            Comp::BufferServe => "buffer_serve",
            Comp::BankModel => "bank_model",
            Comp::IssueScan => "issue_scan",
            Comp::PfTrain => "pf_train",
            Comp::PfFetch => "pf_fetch",
            Comp::WbEngine => "wb_engine",
            Comp::RespPop => "resp_pop",
            Comp::CacheFill => "cache_fill",
            Comp::Sampler => "metrics_sample",
        }
    }
}

/// One node of the aggregated call-tree, identified by its full path
/// from the root (`;`-separated component names — the same encoding
/// folded-stack flamegraph tools consume).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileNode {
    /// Full path from the root, e.g. `run_loop;run_step;mem_tick`.
    pub path: String,
    /// Leaf component name (last path segment).
    pub comp: String,
    /// Wall nanoseconds inside this node, children included.
    pub incl_ns: u64,
    /// Wall nanoseconds inside this node, children excluded.
    pub excl_ns: u64,
    /// Times the span was entered (laps count once per lap).
    pub count: u64,
}

/// Dispatch accounting for one wake source under the event engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WakeSourceStat {
    /// Wake source name (`core`, `memory`, `watchdog`, ...).
    pub source: String,
    /// Jumps this source won (it reported the earliest wake).
    pub wakes: u64,
    /// Wakes whose tick visibly advanced the machine.
    pub productive: u64,
    /// Wakes whose tick changed nothing observable (conservative
    /// wake contract: allowed, but each one is pure overhead).
    pub spurious: u64,
    /// Idle cycles coalesced by jumps this source won.
    pub cycles_skipped: u64,
}

impl WakeSourceStat {
    /// Spurious fraction of this source's wakes (0.0 when it never won).
    #[must_use]
    pub fn spurious_ratio(&self) -> f64 {
        if self.wakes == 0 {
            0.0
        } else {
            self.spurious as f64 / self.wakes as f64
        }
    }
}

/// The aggregated self-profile of one run: call-tree, wall total, and
/// per-wake-source dispatch accounting. Plain data — compiled and
/// serializable in every feature mode so `RunResult`'s schema does not
/// depend on how `camps-obs` was built.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSummary {
    /// Total profiled wall nanoseconds (sum of root-node inclusive
    /// time; with the standard `run_loop` root this is the measured
    /// run-loop wall time).
    pub total_ns: u64,
    /// Call-tree nodes in depth-first order.
    pub nodes: Vec<ProfileNode>,
    /// Per-wake-source dispatch accounting (event engine only; empty
    /// under the polling engine).
    pub wake_sources: Vec<WakeSourceStat>,
    /// Times the event engine's scan-backoff engaged (8 forced ticks
    /// after a tick-dense stretch instead of a full wake scan).
    pub backoff_engagements: u64,
}

impl ProfileSummary {
    /// Collapsed folded-stack text: one `path ns` line per node, using
    /// *exclusive* nanoseconds so a flamegraph reconstructs inclusive
    /// totals by summation (the format `inferno` / `flamegraph.pl`
    /// consume).
    #[must_use]
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            if n.excl_ns > 0 {
                out.push_str(&n.path);
                out.push(' ');
                out.push_str(&n.excl_ns.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Human-readable attribution table, components sorted by
    /// exclusive time (descending).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut rows: Vec<&ProfileNode> = self.nodes.iter().collect();
        rows.sort_by_key(|n| std::cmp::Reverse(n.excl_ns));
        let total = self.total_ns.max(1);
        let mut out = String::from("excl_ms  incl_ms   excl%      count  path\n");
        for n in &rows {
            out.push_str(&format!(
                "{:>7.2}  {:>7.2}  {:>5.1}%  {:>9}  {}\n",
                n.excl_ns as f64 / 1e6,
                n.incl_ns as f64 / 1e6,
                n.excl_ns as f64 * 100.0 / total as f64,
                n.count,
                n.path,
            ));
        }
        if !self.wake_sources.is_empty() {
            out.push_str("\nwake source   wakes  productive  spurious  ratio  cycles_skipped\n");
            for w in &self.wake_sources {
                out.push_str(&format!(
                    "{:<11} {:>7}  {:>10}  {:>8}  {:>4.2}  {}\n",
                    w.source,
                    w.wakes,
                    w.productive,
                    w.spurious,
                    w.spurious_ratio(),
                    w.cycles_skipped,
                ));
            }
            out.push_str(&format!(
                "scan-backoff engagements: {}\n",
                self.backoff_engagements
            ));
        }
        out
    }

    /// Sum of exclusive nanoseconds across all nodes (equals the sum
    /// of root inclusive time; useful for attribution checks).
    #[must_use]
    pub fn attributed_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.excl_ns).sum()
    }

    /// Total spurious wakes across all sources.
    #[must_use]
    pub fn spurious_wakes(&self) -> u64 {
        self.wake_sources.iter().map(|w| w.spurious).sum()
    }
}

#[cfg(feature = "enabled")]
pub use real::Profiler;

#[cfg(feature = "enabled")]
mod real {
    use super::{Comp, ProfileNode, ProfileSummary, WakeSourceStat};
    use camps_types::wake::WakeSource;
    use std::time::Instant;

    const NO_PARENT: usize = usize::MAX;

    #[derive(Debug)]
    struct Node {
        comp: Comp,
        children: Vec<usize>,
        incl_ns: u64,
        excl_ns: u64,
        count: u64,
    }

    #[derive(Debug, Clone, Copy)]
    struct Frame {
        node: usize,
        start_ns: u64,
        child_ns: u64,
    }

    #[derive(Debug, Clone, Copy, Default)]
    struct WakeAcc {
        wakes: u64,
        productive: u64,
        spurious: u64,
        cycles_skipped: u64,
    }

    /// The self-profiler (real implementation; the `enabled` feature is
    /// on). All methods are a single `bool` test when the profiler is
    /// off, which is the default everywhere.
    #[derive(Debug)]
    pub struct Profiler {
        enabled: bool,
        origin: Instant,
        nodes: Vec<Node>,
        roots: Vec<usize>,
        stack: Vec<Frame>,
        wake: [WakeAcc; WakeSource::COUNT],
        pending: Option<WakeSource>,
        backoff_engagements: u64,
        spurious_total: u64,
    }

    impl Profiler {
        /// A disabled profiler: every call is one branch and a return.
        #[must_use]
        pub fn off() -> Self {
            Profiler {
                enabled: false,
                origin: Instant::now(),
                nodes: Vec::new(),
                roots: Vec::new(),
                stack: Vec::new(),
                wake: [WakeAcc::default(); WakeSource::COUNT],
                pending: None,
                backoff_engagements: 0,
                spurious_total: 0,
            }
        }

        /// An enabled profiler; the clock origin is the call instant.
        #[must_use]
        pub fn enabled() -> Self {
            let mut p = Self::off();
            p.enabled = true;
            p
        }

        /// True when spans are being recorded.
        #[must_use]
        pub fn is_enabled(&self) -> bool {
            self.enabled
        }

        /// Nanoseconds since the profiler was created (0 when off).
        /// Also the starting stamp for a [`lap`](Self::lap) chain.
        #[inline]
        #[must_use]
        pub fn stamp(&self) -> u64 {
            if !self.enabled {
                return 0;
            }
            self.now_ns()
        }

        fn now_ns(&self) -> u64 {
            let d = self.origin.elapsed();
            d.as_secs() * 1_000_000_000 + u64::from(d.subsec_nanos())
        }

        /// Child of the current open frame (or a root) for `comp`,
        /// creating it on first use.
        fn node_for(&mut self, comp: Comp) -> usize {
            let parent = self.stack.last().map_or(NO_PARENT, |f| f.node);
            let siblings = if parent == NO_PARENT {
                &self.roots
            } else {
                &self.nodes[parent].children
            };
            if let Some(&id) = siblings.iter().find(|&&id| self.nodes[id].comp == comp) {
                return id;
            }
            let id = self.nodes.len();
            self.nodes.push(Node {
                comp,
                children: Vec::new(),
                incl_ns: 0,
                excl_ns: 0,
                count: 0,
            });
            if parent == NO_PARENT {
                self.roots.push(id);
            } else {
                self.nodes[parent].children.push(id);
            }
            id
        }

        /// Opens a span for a phase that contains nested spans.
        #[inline]
        pub fn enter(&mut self, comp: Comp) {
            if !self.enabled {
                return;
            }
            let start_ns = self.now_ns();
            let node = self.node_for(comp);
            self.stack.push(Frame {
                node,
                start_ns,
                child_ns: 0,
            });
        }

        /// Closes the span opened by the matching [`enter`](Self::enter).
        /// Returns the close timestamp so a `lap` chain can continue
        /// from it without a second clock read (0 when off).
        #[inline]
        pub fn exit(&mut self, comp: Comp) -> u64 {
            if !self.enabled {
                return 0;
            }
            let now = self.now_ns();
            let Some(frame) = self.stack.pop() else {
                return now;
            };
            debug_assert_eq!(
                self.nodes[frame.node].comp, comp,
                "unbalanced profiler span"
            );
            let d = now.saturating_sub(frame.start_ns);
            let n = &mut self.nodes[frame.node];
            n.incl_ns += d;
            n.excl_ns += d.saturating_sub(frame.child_ns);
            n.count += 1;
            if let Some(parent) = self.stack.last_mut() {
                parent.child_ns += d;
            }
            now
        }

        /// Charges `now - prev` to a *leaf* child `comp` of the open
        /// frame and returns `now` for the next lap. One clock read
        /// per phase boundary; `prev` comes from [`stamp`](Self::stamp),
        /// a previous `lap`, or an [`exit`](Self::exit) return value.
        #[inline]
        pub fn lap(&mut self, comp: Comp, prev: u64) -> u64 {
            if !self.enabled {
                return 0;
            }
            let now = self.now_ns();
            let d = now.saturating_sub(prev);
            let node = self.node_for(comp);
            let n = &mut self.nodes[node];
            n.incl_ns += d;
            n.excl_ns += d;
            n.count += 1;
            if let Some(parent) = self.stack.last_mut() {
                parent.child_ns += d;
            }
            now
        }

        /// Event engine: `source` won the wake fold and the engine
        /// jumped over `skipped` idle cycles. The productive/spurious
        /// verdict arrives via [`note_outcome`](Self::note_outcome)
        /// after the tick body runs.
        #[inline]
        pub fn note_jump(&mut self, source: WakeSource, skipped: u64) {
            if !self.enabled {
                return;
            }
            let acc = &mut self.wake[source as usize];
            acc.wakes += 1;
            acc.cycles_skipped += skipped;
            self.pending = Some(source);
        }

        /// Event engine: the tick after the last jump did (not) make
        /// observable progress.
        #[inline]
        pub fn note_outcome(&mut self, productive: bool) {
            if !self.enabled {
                return;
            }
            let Some(source) = self.pending.take() else {
                return;
            };
            let acc = &mut self.wake[source as usize];
            if productive {
                acc.productive += 1;
            } else {
                acc.spurious += 1;
                self.spurious_total += 1;
            }
        }

        /// Event engine: a scan-backoff window (forced dense ticks)
        /// engaged.
        #[inline]
        pub fn note_backoff_engaged(&mut self) {
            if self.enabled {
                self.backoff_engagements += 1;
            }
        }

        /// Total spurious wakes so far (metrics time-series column).
        #[must_use]
        pub fn spurious_total(&self) -> u64 {
            self.spurious_total
        }

        /// Nanoseconds of host wall clock since profiling started
        /// (metrics time-series column; 0 when off).
        #[must_use]
        pub fn host_ns(&self) -> u64 {
            self.stamp()
        }

        /// The aggregated summary, `None` when the profiler is off.
        /// Any still-open frames are ignored (call after the run loop).
        #[must_use]
        pub fn summary(&self) -> Option<ProfileSummary> {
            if !self.enabled {
                return None;
            }
            let mut nodes = Vec::with_capacity(self.nodes.len());
            // Depth-first from the roots so parents precede children.
            let mut work: Vec<(usize, String)> = self
                .roots
                .iter()
                .rev()
                .map(|&id| (id, String::new()))
                .collect();
            while let Some((id, prefix)) = work.pop() {
                let n = &self.nodes[id];
                let path = if prefix.is_empty() {
                    n.comp.name().to_string()
                } else {
                    format!("{prefix};{}", n.comp.name())
                };
                nodes.push(ProfileNode {
                    path: path.clone(),
                    comp: n.comp.name().to_string(),
                    incl_ns: n.incl_ns,
                    excl_ns: n.excl_ns,
                    count: n.count,
                });
                for &c in n.children.iter().rev() {
                    work.push((c, path.clone()));
                }
            }
            let total_ns = self.roots.iter().map(|&id| self.nodes[id].incl_ns).sum();
            let wake_sources = WakeSource::ALL
                .iter()
                .zip(self.wake.iter())
                .filter(|(_, acc)| acc.wakes > 0)
                .map(|(src, acc)| WakeSourceStat {
                    source: src.name().to_string(),
                    wakes: acc.wakes,
                    productive: acc.productive,
                    spurious: acc.spurious,
                    cycles_skipped: acc.cycles_skipped,
                })
                .collect();
            Some(ProfileSummary {
                total_ns,
                nodes,
                wake_sources,
                backoff_engagements: self.backoff_engagements,
            })
        }
    }
}

/// The self-profiler (compiled-out stub: the `enabled` feature is off).
/// Zero-sized; every method is an inline no-op, so span call sites
/// vanish entirely and results stay bit-identical to an unprofiled
/// build.
#[cfg(not(feature = "enabled"))]
#[derive(Debug)]
pub struct Profiler;

#[cfg(not(feature = "enabled"))]
#[allow(clippy::unused_self, clippy::missing_const_for_fn)]
impl Profiler {
    /// A disabled profiler (the only kind in this build).
    #[must_use]
    pub fn off() -> Self {
        Profiler
    }

    /// "Enabled" profiler — still a no-op in this build.
    #[must_use]
    pub fn enabled() -> Self {
        Profiler
    }

    /// Always false in this build.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// Always 0.
    #[inline]
    #[must_use]
    pub fn stamp(&self) -> u64 {
        0
    }

    /// No-op.
    #[inline]
    pub fn enter(&mut self, _comp: Comp) {}

    /// No-op; always 0.
    #[inline]
    pub fn exit(&mut self, _comp: Comp) -> u64 {
        0
    }

    /// No-op; always 0.
    #[inline]
    pub fn lap(&mut self, _comp: Comp, _prev: u64) -> u64 {
        0
    }

    /// No-op.
    #[inline]
    pub fn note_jump(&mut self, _source: WakeSource, _skipped: u64) {}

    /// No-op.
    #[inline]
    pub fn note_outcome(&mut self, _productive: bool) {}

    /// No-op.
    #[inline]
    pub fn note_backoff_engaged(&mut self) {}

    /// Always 0.
    #[must_use]
    pub fn spurious_total(&self) -> u64 {
        0
    }

    /// Always 0.
    #[must_use]
    pub fn host_ns(&self) -> u64 {
        0
    }

    /// Always `None`.
    #[must_use]
    pub fn summary(&self) -> Option<ProfileSummary> {
        None
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let mut p = Profiler::off();
        assert_eq!(p.stamp(), 0);
        p.enter(Comp::RunLoop);
        assert_eq!(p.exit(Comp::RunLoop), 0);
        assert!(p.summary().is_none());
    }

    #[test]
    fn tree_nests_and_attributes() {
        let mut p = Profiler::enabled();
        p.enter(Comp::RunLoop);
        p.enter(Comp::RunStep);
        let t = p.stamp();
        let t = p.lap(Comp::WbDrain, t);
        let _ = p.lap(Comp::RespPop, t);
        p.exit(Comp::RunStep);
        p.exit(Comp::RunLoop);
        let s = p.summary().expect("enabled profiler summarizes");
        let paths: Vec<&str> = s.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "run_loop",
                "run_loop;run_step",
                "run_loop;run_step;wb_drain",
                "run_loop;run_step;resp_pop",
            ]
        );
        let root = &s.nodes[0];
        let step = &s.nodes[1];
        // The root's inclusive time covers the nested step; exclusive
        // time telescopes (root excl + step incl == root incl).
        assert!(root.incl_ns >= step.incl_ns);
        assert_eq!(root.incl_ns, root.excl_ns + step.incl_ns);
        // Laps subtract from the step's exclusive time.
        let laps: u64 = s.nodes[2].incl_ns + s.nodes[3].incl_ns;
        assert_eq!(step.incl_ns, step.excl_ns + laps);
        assert_eq!(s.total_ns, root.incl_ns);
        // Every nanosecond is attributed to exactly one exclusive bin.
        assert_eq!(s.attributed_ns(), s.total_ns);
    }

    #[test]
    fn wake_accounting_classifies_outcomes() {
        use camps_types::wake::WakeSource;
        let mut p = Profiler::enabled();
        p.note_jump(WakeSource::Core, 10);
        p.note_outcome(true);
        p.note_jump(WakeSource::Core, 5);
        p.note_outcome(false);
        p.note_jump(WakeSource::Sampler, 100);
        p.note_outcome(false);
        p.note_backoff_engaged();
        assert_eq!(p.spurious_total(), 2);
        let s = p.summary().unwrap();
        assert_eq!(s.backoff_engagements, 1);
        assert_eq!(s.spurious_wakes(), 2);
        let core = s.wake_sources.iter().find(|w| w.source == "core").unwrap();
        assert_eq!((core.wakes, core.productive, core.spurious), (2, 1, 1));
        assert_eq!(core.cycles_skipped, 15);
        assert!((core.spurious_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn folded_render_is_flamegraph_shaped() {
        let s = ProfileSummary {
            total_ns: 30,
            nodes: vec![
                ProfileNode {
                    path: "run_loop".into(),
                    comp: "run_loop".into(),
                    incl_ns: 30,
                    excl_ns: 10,
                    count: 1,
                },
                ProfileNode {
                    path: "run_loop;mem_tick".into(),
                    comp: "mem_tick".into(),
                    incl_ns: 20,
                    excl_ns: 20,
                    count: 4,
                },
            ],
            wake_sources: vec![],
            backoff_engagements: 0,
        };
        assert_eq!(s.render_folded(), "run_loop 10\nrun_loop;mem_tick 20\n");
        let json = serde_json::to_string(&s).unwrap();
        let back: ProfileSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
