//! camps-obs — observability for the CAMPS simulator.
//!
//! Three facilities, all reachable through one cheap [`TraceHandle`]:
//!
//! 1. **Request-lifecycle tracer.** Every demand/prefetch request is
//!    stamped as it moves core issue → MSHR → host queue → serial link →
//!    vault queue → bank (or prefetch buffer) → response link. Completed
//!    lifecycles become per-stage spans in a bounded ring buffer and are
//!    exported as Chrome trace-event JSON, loadable in Perfetto
//!    (`ui.perfetto.dev`). Watchdog trips, injected faults, checkpoints
//!    and rollbacks appear as instants/slices on a `recovery` track.
//! 2. **Metrics registry.** The system layer pushes a [`MetricsSample`]
//!    every `--metrics-every N` cycles; the series is exported as JSONL
//!    (or CSV, chosen by file extension). Rows carry a schema version
//!    ([`METRICS_SCHEMA_VERSION`]) so downstream tooling can reject
//!    incompatible files instead of misreading them.
//! 3. **Latency-breakdown histograms.** Per-stage `Log2Histogram`s of
//!    demand-read latency, folded into a [`StageBreakdown`] that rides
//!    along in `RunResult` — the per-stage AMAT decomposition behind the
//!    paper's Figure 8 argument.
//!
//! The whole crate compiles out: with the `enabled` feature off (it is
//! on by default) [`TraceHandle`] is a zero-sized type and every hook is
//! an empty inline function. With the feature on but no handle installed
//! (the default at runtime), each hook is a single `Option` test on a
//! `None` — the perf-smoke gate asserts this stays free.
//!
//! Stage sums telescope: for a demand read delivered at cycle `d` and
//! issued at cycle `i`, the six stage durations add up to exactly
//! `d - i`, which is the same quantity the system's `amat_mem`
//! accumulator records for the request's primary waiter. A traced run's
//! per-stage sums therefore reconcile with `amat_mem` (exactly on
//! merge-free workloads; within noise otherwise, since MSHR merges wake
//! several waiters per memory request).

#![warn(missing_docs)]

mod breakdown;
#[cfg(feature = "enabled")]
mod core;
mod metrics;
mod profiler;
mod stage;

pub use breakdown::{StageBreakdown, StageLatency};
pub use metrics::{MetricsFormat, MetricsSample, METRICS_SCHEMA_VERSION};
pub use profiler::{Comp, ProfileNode, ProfileSummary, Profiler, WakeSourceStat};
pub use stage::{Point, ReqClass, Stage, STAGE_COUNT};

use camps_types::clock::Cycle;
use camps_types::request::ServiceSource;
use std::path::{Path, PathBuf};

/// Default capacity of the trace ring buffer (events, oldest dropped).
pub const TRACE_RING_DEFAULT: usize = 1 << 18;

/// Runtime observability configuration, normally built from CLI flags.
///
/// `Default` is everything off. Tracing activates when `trace_out` is
/// set; periodic metrics sampling when `metrics_every` is set. Stage
/// histograms (the [`StageBreakdown`]) are collected whenever a handle
/// is installed at all, so a default config still yields a breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsConfig {
    /// Write a Chrome trace-event JSON here after the run.
    pub trace_out: Option<PathBuf>,
    /// Keep only spans whose stage name contains this substring
    /// (instants and recovery slices are always kept).
    pub trace_filter: Option<String>,
    /// Ring-buffer capacity in events; `0` means [`TRACE_RING_DEFAULT`].
    pub trace_capacity: usize,
    /// Push a [`MetricsSample`] every N cycles.
    pub metrics_every: Option<u64>,
    /// Write the sampled series here after the run (`.csv` extension
    /// selects CSV, anything else JSONL).
    pub metrics_out: Option<PathBuf>,
    /// Enable the host-side self-profiler ([`Profiler`]); the summary
    /// rides in `RunResult.profile`.
    pub profile: bool,
    /// Write the self-profile as collapsed folded-stack text here
    /// after the run (implies `profile`).
    pub profile_out: Option<PathBuf>,
}

impl ObsConfig {
    /// True when any output or sampling was requested.
    #[must_use]
    pub fn wants_any(&self) -> bool {
        self.trace_out.is_some()
            || self.metrics_every.is_some()
            || self.metrics_out.is_some()
            || self.wants_profile()
    }

    /// True when the self-profiler should be enabled.
    #[must_use]
    pub fn wants_profile(&self) -> bool {
        self.profile || self.profile_out.is_some()
    }
}

/// What a trace export wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportReport {
    /// Trace records written (spans count once, not per JSON event).
    pub records: u64,
    /// Records evicted from the ring before export (trace truncated).
    pub dropped: u64,
}

fn unsupported() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "camps-obs was compiled without the `enabled` feature",
    )
}

/// The hook object threaded through the simulator.
///
/// Cloning is cheap (an `Arc`); all clones observe the same state, so
/// the system, cube, and every vault can stamp into one tracer. The
/// handle is deliberately *not* part of any `Snapshot`: checkpoints are
/// byte-identical with and without observability.
#[cfg(feature = "enabled")]
#[derive(Clone, Default, Debug)]
pub struct TraceHandle(Option<std::sync::Arc<std::sync::Mutex<core::ObsCore>>>);

/// The hook object threaded through the simulator (compiled-out stub).
/// Deliberately not `Copy`: call sites `.clone()` the handle exactly as
/// they do for the Arc-backed real one, in both configurations.
#[cfg(not(feature = "enabled"))]
#[derive(Clone, Default, Debug)]
pub struct TraceHandle;

#[cfg(feature = "enabled")]
impl TraceHandle {
    /// An active handle configured by `cfg`.
    #[must_use]
    pub fn new(cfg: &ObsConfig) -> Self {
        Self(Some(std::sync::Arc::new(std::sync::Mutex::new(
            core::ObsCore::new(cfg),
        ))))
    }

    /// The default, do-nothing handle.
    #[must_use]
    pub fn disabled() -> Self {
        Self(None)
    }

    /// True when this crate was built with the `enabled` feature.
    #[must_use]
    pub const fn compiled() -> bool {
        true
    }

    /// True when this handle actually records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut core::ObsCore) -> R) -> Option<R> {
        self.0.as_ref().map(|m| {
            let mut guard = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            f(&mut guard)
        })
    }

    /// Opens a lifecycle record: the request entered the memory system.
    ///
    /// `issue` is the cycle latency accounting starts from (first MSHR
    /// attempt for retried loads); `inject` is when the request entered
    /// the host queue.
    #[inline]
    pub fn issue(
        &self,
        id: u64,
        core: u8,
        addr: u64,
        class: ReqClass,
        issue: Cycle,
        inject: Cycle,
    ) {
        self.with(|c| c.issue(id, core, addr, class, issue, inject));
    }

    /// Stamps one lifecycle point on an in-flight request. Unknown ids
    /// (e.g. unsolicited cache-push packets) are ignored.
    #[inline]
    pub fn stamp(&self, id: u64, point: Point, at: Cycle) {
        self.with(|c| c.stamp(id, point, at));
    }

    /// Stamps delivery into a cube's host queue after the inter-cube
    /// interconnect, recording which cube owns the request. Single-cube
    /// machines never call this; the `cube_link` span is then absent
    /// and the host-queue span starts at injection, exactly as before.
    #[inline]
    pub fn cube_arrive(&self, id: u64, cube: u16, at: Cycle) {
        self.with(|c| c.cube_arrive(id, cube, at));
    }

    /// Stamps arrival at a vault, recording which vault it was.
    #[inline]
    pub fn arrive(&self, id: u64, vault: u16, at: Cycle) {
        self.with(|c| c.arrive(id, vault, at));
    }

    /// Closes a lifecycle: the response was delivered at `at`. Emits the
    /// request's stage spans and folds demand reads into the histograms.
    #[inline]
    pub fn finish(&self, id: u64, source: ServiceSource, at: Cycle) {
        self.with(|c| c.finish(id, source, at));
    }

    /// Forgets an in-flight request (it was dropped by an injected
    /// fault and will never complete).
    #[inline]
    pub fn abort(&self, id: u64) {
        self.with(|c| c.abort(id));
    }

    /// Records a completed prefetch row fetch as a span.
    #[inline]
    pub fn fetch_span(&self, vault: u16, bank: u32, row: u64, start: Cycle, end: Cycle) {
        self.with(|c| c.fetch_span(vault, bank, row, start, end));
    }

    /// Records an instantaneous event (watchdog trip, injected fault).
    #[inline]
    pub fn mark(&self, name: &'static str, at: Cycle) {
        self.with(|c| c.mark(name, at));
    }

    /// Records an instantaneous event with a runtime-built name — the
    /// sweep supervisor stamps retry/quarantine markers carrying the
    /// job's identity (`sweep_retry:HM1/CampsMod#7`). `at` is whatever
    /// timebase the caller renders in (the sweep uses microseconds of
    /// wall clock since sweep start).
    #[inline]
    pub fn instant(&self, name: String, at: Cycle) {
        self.with(|c| c.instant(name, at));
    }

    /// Records a cycle interval on the recovery track (checkpoint write,
    /// rollback replay window).
    #[inline]
    pub fn window(&self, name: &'static str, start: Cycle, end: Cycle) {
        self.with(|c| c.window(name, start, end));
    }

    /// Appends one metrics sample to the time-series.
    #[inline]
    pub fn push_sample(&self, sample: MetricsSample) {
        self.with(|c| c.push_sample(sample));
    }

    /// `(count, total cycles)` of traced demand reads so far.
    #[must_use]
    pub fn traced_reads(&self) -> (u64, u64) {
        self.with(|c| c.traced_reads()).unwrap_or((0, 0))
    }

    /// Number of metrics samples collected so far.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.with(|c| c.samples_len()).unwrap_or(0)
    }

    /// The per-stage latency breakdown, `None` when disabled.
    #[must_use]
    pub fn breakdown(&self) -> Option<StageBreakdown> {
        self.with(|c| c.breakdown())
    }

    /// Renders the trace ring as Chrome trace-event JSON, `None` when
    /// disabled.
    #[must_use]
    pub fn render_trace_json(&self) -> Option<String> {
        self.with(|c| c.render_trace_json())
    }

    /// Renders the metrics series, `None` when disabled.
    #[must_use]
    pub fn render_metrics(&self, format: MetricsFormat) -> Option<String> {
        self.with(|c| c.render_metrics(format))
    }

    /// Writes the trace JSON to `path`.
    ///
    /// # Errors
    /// Fails on I/O errors or when the handle is disabled.
    pub fn export_trace(&self, path: &Path) -> std::io::Result<ExportReport> {
        let (text, report) = self
            .with(|c| (c.render_trace_json(), c.export_report()))
            .ok_or_else(unsupported)?;
        std::fs::write(path, text)?;
        if report.dropped > 0 {
            // The written file carries the same counts in its
            // `trace_ring` metadata record; warn here so a truncated
            // trace is never mistaken for the whole run.
            eprintln!(
                "camps-obs: trace ring overflowed: {} record(s) dropped, {} kept \
                 (raise ObsConfig::trace_capacity or narrow --trace-filter)",
                report.dropped, report.records
            );
        }
        Ok(report)
    }

    /// Writes the metrics series to `path` (CSV when the extension is
    /// `.csv`, JSONL otherwise). Returns the number of rows written.
    ///
    /// # Errors
    /// Fails on I/O errors or when the handle is disabled.
    pub fn export_metrics(&self, path: &Path) -> std::io::Result<u64> {
        let format = MetricsFormat::for_path(path);
        let (text, rows) = self
            .with(|c| (c.render_metrics(format), c.samples_len()))
            .ok_or_else(unsupported)?;
        std::fs::write(path, text)?;
        Ok(rows)
    }
}

#[cfg(not(feature = "enabled"))]
#[allow(clippy::unused_self, clippy::missing_const_for_fn)]
impl TraceHandle {
    /// An active handle (no-op in this build).
    #[must_use]
    pub fn new(_cfg: &ObsConfig) -> Self {
        Self
    }

    /// The default, do-nothing handle.
    #[must_use]
    pub fn disabled() -> Self {
        Self
    }

    /// True when this crate was built with the `enabled` feature.
    #[must_use]
    pub const fn compiled() -> bool {
        false
    }

    /// Always false in this build.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// No-op.
    #[inline]
    pub fn issue(
        &self,
        _id: u64,
        _core: u8,
        _addr: u64,
        _class: ReqClass,
        _issue: Cycle,
        _inject: Cycle,
    ) {
    }

    /// No-op.
    #[inline]
    pub fn stamp(&self, _id: u64, _point: Point, _at: Cycle) {}

    /// No-op.
    #[inline]
    pub fn cube_arrive(&self, _id: u64, _cube: u16, _at: Cycle) {}

    /// No-op.
    #[inline]
    pub fn arrive(&self, _id: u64, _vault: u16, _at: Cycle) {}

    /// No-op.
    #[inline]
    pub fn finish(&self, _id: u64, _source: ServiceSource, _at: Cycle) {}

    /// No-op.
    #[inline]
    pub fn abort(&self, _id: u64) {}

    /// No-op.
    #[inline]
    pub fn fetch_span(&self, _vault: u16, _bank: u32, _row: u64, _start: Cycle, _end: Cycle) {}

    /// No-op.
    #[inline]
    pub fn mark(&self, _name: &'static str, _at: Cycle) {}

    /// No-op.
    #[inline]
    pub fn instant(&self, _name: String, _at: Cycle) {}

    /// No-op.
    #[inline]
    pub fn window(&self, _name: &'static str, _start: Cycle, _end: Cycle) {}

    /// No-op.
    #[inline]
    pub fn push_sample(&self, _sample: MetricsSample) {}

    /// Always zero.
    #[must_use]
    pub fn traced_reads(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Always zero.
    #[must_use]
    pub fn samples(&self) -> u64 {
        0
    }

    /// Always `None`.
    #[must_use]
    pub fn breakdown(&self) -> Option<StageBreakdown> {
        None
    }

    /// Always `None`.
    #[must_use]
    pub fn render_trace_json(&self) -> Option<String> {
        None
    }

    /// Always `None`.
    #[must_use]
    pub fn render_metrics(&self, _format: MetricsFormat) -> Option<String> {
        None
    }

    /// Always fails: tracing is compiled out.
    ///
    /// # Errors
    /// Always returns `ErrorKind::Unsupported`.
    pub fn export_trace(&self, _path: &Path) -> std::io::Result<ExportReport> {
        Err(unsupported())
    }

    /// Always fails: tracing is compiled out.
    ///
    /// # Errors
    /// Always returns `ErrorKind::Unsupported`.
    pub fn export_metrics(&self, _path: &Path) -> std::io::Result<u64> {
        Err(unsupported())
    }
}
