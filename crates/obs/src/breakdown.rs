//! Per-stage latency breakdown folded into `RunResult`.

use serde::{Deserialize, Serialize};

/// One stage's aggregate demand-read latency contribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageLatency {
    /// Stage name (see `Stage::name`).
    pub stage: String,
    /// Demand reads that spent time in this stage.
    pub count: u64,
    /// Total cycles spent in this stage across all traced reads.
    pub total_cycles: u64,
    /// Mean cycles per traced read (over *all* traced reads, so the
    /// means of all stages add up to the mean total latency).
    pub mean_cycles: f64,
}

/// The per-stage AMAT decomposition of a traced run.
///
/// Stage sums telescope: `sum(stages[i].total_cycles)` equals the total
/// issue→delivery latency over all traced demand reads, so
/// `sum(stages[i].mean_cycles)` equals [`StageBreakdown::mean_total`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// Demand reads whose full lifecycle was traced.
    pub demand_reads: u64,
    /// Mean issue→delivery latency of those reads, cycles.
    pub mean_total: f64,
    /// Per-stage contributions, pipeline order, zero-count stages kept
    /// (so the schema is fixed-width).
    pub stages: Vec<StageLatency>,
}

impl StageBreakdown {
    /// Mean cycles attributed to `stage`, 0.0 if absent.
    #[must_use]
    pub fn mean_of(&self, stage: &str) -> f64 {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map_or(0.0, |s| s.mean_cycles)
    }
}
