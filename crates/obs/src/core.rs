//! The live tracer state behind an enabled [`TraceHandle`].
//!
//! [`TraceHandle`]: crate::TraceHandle

use crate::breakdown::{StageBreakdown, StageLatency};
use crate::metrics::{MetricsFormat, MetricsSample, CSV_HEADER};
use crate::stage::{Point, ReqClass, Stage, STAGE_COUNT};
use crate::{ExportReport, ObsConfig, TRACE_RING_DEFAULT};
use camps_stats::{Log2Histogram, Running};
use camps_types::clock::Cycle;
use camps_types::request::ServiceSource;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

/// Sentinel for a lifecycle point that was never stamped.
const UNSET: Cycle = Cycle::MAX;

/// Cap on stored metrics rows: beyond this the oldest rows are dropped
/// (a run sampling every cycle must not balloon memory).
const METRICS_ROW_CAP: usize = 1 << 20;

/// An in-flight request's stamps.
#[derive(Debug, Clone, Copy)]
struct Pending {
    class: ReqClass,
    core: u8,
    cube: u16,
    vault: u16,
    addr: u64,
    issue: Cycle,
    inject: Cycle,
    /// Delivery into the owning cube's host queue after the inter-cube
    /// interconnect; `UNSET` on single-cube machines (no hop exists).
    cube_arrive: Cycle,
    launch: Cycle,
    arrive: Cycle,
    service: Cycle,
    ready: Cycle,
}

/// One record in the bounded trace ring. Spans are stored whole (one
/// record per stage) so ring eviction can never orphan half of an
/// async begin/end pair.
#[derive(Debug, Clone)]
enum TraceRecord {
    /// A request spent `[start, end]` in `stage`.
    Span {
        stage: Stage,
        id: u64,
        core: u8,
        cube: u16,
        vault: u16,
        addr: u64,
        source: Option<ServiceSource>,
        start: Cycle,
        end: Cycle,
    },
    /// A prefetch engine fetched one row into the buffer.
    Fetch {
        seq: u64,
        vault: u16,
        bank: u32,
        row: u64,
        start: Cycle,
        end: Cycle,
    },
    /// An instantaneous event (watchdog trip, injected fault).
    Mark { name: &'static str, at: Cycle },
    /// An instantaneous event with a runtime-built name (sweep-level
    /// retry/quarantine markers carrying the job's identity).
    Instant { name: String, at: Cycle },
    /// A recovery-track interval (checkpoint, rollback replay).
    Window {
        name: &'static str,
        start: Cycle,
        end: Cycle,
    },
}

/// All observability state. Lives behind `Arc<Mutex<..>>`; deliberately
/// excluded from every `Snapshot` implementation.
#[derive(Debug)]
pub(crate) struct ObsCore {
    record_spans: bool,
    filter: Option<String>,
    capacity: usize,
    pending: HashMap<u64, Pending>,
    ring: VecDeque<TraceRecord>,
    dropped: u64,
    fetch_seq: u64,
    stage_hist: [Log2Histogram; STAGE_COUNT],
    traced: Running,
    traced_cycles: u64,
    samples: Vec<MetricsSample>,
}

fn span_len(start: Cycle, end: Cycle) -> Option<Cycle> {
    (start != UNSET && end != UNSET && end >= start).then(|| end - start)
}

impl ObsCore {
    pub(crate) fn new(cfg: &ObsConfig) -> Self {
        Self {
            record_spans: cfg.trace_out.is_some(),
            filter: cfg.trace_filter.clone(),
            capacity: if cfg.trace_capacity == 0 {
                TRACE_RING_DEFAULT
            } else {
                cfg.trace_capacity
            },
            pending: HashMap::new(),
            ring: VecDeque::new(),
            dropped: 0,
            fetch_seq: 0,
            stage_hist: std::array::from_fn(|_| Log2Histogram::new()),
            traced: Running::new(),
            traced_cycles: 0,
            samples: Vec::new(),
        }
    }

    fn push(&mut self, rec: TraceRecord) {
        if !self.record_spans {
            return;
        }
        if let Some(f) = &self.filter {
            let name = match &rec {
                TraceRecord::Span { stage, .. } => stage.name(),
                TraceRecord::Fetch { .. } => "row_fetch",
                // Rare, load-bearing events always survive the filter.
                TraceRecord::Mark { .. }
                | TraceRecord::Instant { .. }
                | TraceRecord::Window { .. } => "",
            };
            if !name.is_empty() && !name.contains(f.as_str()) {
                return;
            }
        }
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }

    pub(crate) fn issue(
        &mut self,
        id: u64,
        core: u8,
        addr: u64,
        class: ReqClass,
        issue: Cycle,
        inject: Cycle,
    ) {
        self.pending.insert(
            id,
            Pending {
                class,
                core,
                cube: 0,
                vault: 0,
                addr,
                issue,
                inject,
                cube_arrive: UNSET,
                launch: UNSET,
                arrive: UNSET,
                service: UNSET,
                ready: UNSET,
            },
        );
    }

    pub(crate) fn stamp(&mut self, id: u64, point: Point, at: Cycle) {
        let Some(p) = self.pending.get_mut(&id) else {
            return;
        };
        match point {
            Point::LinkLaunch => p.launch = at,
            // A queue-full retry re-selects later; keep the *first*
            // service start so stage sums still telescope.
            Point::ServiceStart => {
                if p.service == UNSET {
                    p.service = at;
                }
            }
            Point::RespReady => p.ready = at,
        }
    }

    pub(crate) fn cube_arrive(&mut self, id: u64, cube: u16, at: Cycle) {
        if let Some(p) = self.pending.get_mut(&id) {
            p.cube = cube;
            if p.cube_arrive == UNSET {
                p.cube_arrive = at;
            }
        }
    }

    pub(crate) fn arrive(&mut self, id: u64, vault: u16, at: Cycle) {
        if let Some(p) = self.pending.get_mut(&id) {
            p.vault = vault;
            // Faults can re-deliver; the first arrival is the real one.
            if p.arrive == UNSET {
                p.arrive = at;
            }
        }
    }

    pub(crate) fn abort(&mut self, id: u64) {
        self.pending.remove(&id);
    }

    pub(crate) fn finish(&mut self, id: u64, source: ServiceSource, at: Cycle) {
        let Some(p) = self.pending.remove(&id) else {
            return;
        };
        let service_stage = Stage::from_source(source);
        // With no interconnect hop (`cube_arrive` unset) the cube-link
        // edge has zero span and is skipped, and the host-queue span
        // starts at injection — exactly the single-cube accounting. With
        // a hop the two edges telescope through `cube_arrive` instead.
        let hq_start = if p.cube_arrive == UNSET {
            p.inject
        } else {
            p.cube_arrive
        };
        let edges = [
            (Stage::CacheMshr, p.issue, p.inject),
            (Stage::CubeLink, p.inject, p.cube_arrive),
            (Stage::HostQueue, hq_start, p.launch),
            (Stage::ReqLink, p.launch, p.arrive),
            (Stage::VaultQueue, p.arrive, p.service),
            (service_stage, p.service, p.ready),
            (Stage::RespLink, p.ready, at),
        ];
        let histogram = matches!(p.class, ReqClass::DemandRead);
        for (stage, start, end) in edges {
            let Some(len) = span_len(start, end) else {
                continue;
            };
            if histogram {
                self.stage_hist[stage.index()].record(len);
                self.traced_cycles = self.traced_cycles.saturating_add(len);
            }
            if p.class.traced() {
                self.push(TraceRecord::Span {
                    stage,
                    id,
                    core: p.core,
                    cube: p.cube,
                    vault: p.vault,
                    addr: p.addr,
                    source: (stage == service_stage).then_some(source),
                    start,
                    end,
                });
            }
        }
        if histogram {
            if let Some(total) = span_len(p.issue, at) {
                self.traced.record(total as f64);
            }
        }
    }

    pub(crate) fn fetch_span(&mut self, vault: u16, bank: u32, row: u64, start: Cycle, end: Cycle) {
        let seq = self.fetch_seq;
        self.fetch_seq += 1;
        self.push(TraceRecord::Fetch {
            seq,
            vault,
            bank,
            row,
            start,
            end,
        });
    }

    pub(crate) fn mark(&mut self, name: &'static str, at: Cycle) {
        self.push(TraceRecord::Mark { name, at });
    }

    pub(crate) fn instant(&mut self, name: String, at: Cycle) {
        self.push(TraceRecord::Instant { name, at });
    }

    pub(crate) fn window(&mut self, name: &'static str, start: Cycle, end: Cycle) {
        self.push(TraceRecord::Window { name, start, end });
    }

    pub(crate) fn push_sample(&mut self, sample: MetricsSample) {
        if self.samples.len() >= METRICS_ROW_CAP {
            self.samples.remove(0);
        }
        self.samples.push(sample);
    }

    pub(crate) fn traced_reads(&self) -> (u64, u64) {
        (self.traced.count(), self.traced_cycles)
    }

    pub(crate) fn samples_len(&self) -> u64 {
        self.samples.len() as u64
    }

    pub(crate) fn export_report(&self) -> ExportReport {
        ExportReport {
            records: self.ring.len() as u64,
            dropped: self.dropped,
        }
    }

    pub(crate) fn breakdown(&self) -> StageBreakdown {
        let reads = self.traced.count();
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                let h = &self.stage_hist[s.index()];
                let total = h.sum();
                StageLatency {
                    stage: s.name().to_string(),
                    count: h.count(),
                    total_cycles: total,
                    mean_cycles: if reads == 0 {
                        0.0
                    } else {
                        total as f64 / reads as f64
                    },
                }
            })
            .collect();
        StageBreakdown {
            demand_reads: reads,
            mean_total: self.traced.mean().unwrap_or(0.0),
            stages,
        }
    }

    /// Chrome trace-event JSON (object form). Request spans are async
    /// begin/end pairs keyed by request id so overlapping lifetimes get
    /// their own lanes in Perfetto; recovery intervals are complete
    /// (`X`) slices; faults and watchdog trips are instants.
    pub(crate) fn render_trace_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.ring.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
             \"args\":{\"name\":\"camps-sim\"}}",
        );
        // Ring accounting rides along as metadata so a viewer (or a
        // script) can tell a complete trace from a truncated one.
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":1,\"name\":\"trace_ring\",\
             \"args\":{{\"records\":{},\"dropped\":{},\"capacity\":{}}}}}",
            self.ring.len(),
            self.dropped,
            self.capacity
        );
        for rec in &self.ring {
            match rec {
                TraceRecord::Span {
                    stage,
                    id,
                    core,
                    cube,
                    vault,
                    addr,
                    source,
                    start,
                    end,
                } => {
                    let name = stage.name();
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"b\",\"cat\":\"req\",\"id\":\"0x{id:x}\",\
                         \"name\":\"{name}\",\"pid\":1,\"tid\":1,\"ts\":{start},\
                         \"args\":{{\"core\":{core},\"cube\":{cube},\"vault\":{vault},\
                         \"addr\":\"0x{addr:x}\""
                    );
                    if let Some(src) = source {
                        let _ = write!(out, ",\"source\":\"{}\"", src.name());
                    }
                    let _ = write!(
                        out,
                        "}}}},\n{{\"ph\":\"e\",\"cat\":\"req\",\"id\":\"0x{id:x}\",\
                         \"name\":\"{name}\",\"pid\":1,\"tid\":1,\"ts\":{end}}}"
                    );
                }
                TraceRecord::Fetch {
                    seq,
                    vault,
                    bank,
                    row,
                    start,
                    end,
                } => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"b\",\"cat\":\"pf\",\"id\":\"f{seq}\",\
                         \"name\":\"row_fetch\",\"pid\":1,\"tid\":2,\"ts\":{start},\
                         \"args\":{{\"vault\":{vault},\"bank\":{bank},\"row\":{row}}}}},\n\
                         {{\"ph\":\"e\",\"cat\":\"pf\",\"id\":\"f{seq}\",\
                         \"name\":\"row_fetch\",\"pid\":1,\"tid\":2,\"ts\":{end}}}"
                    );
                }
                TraceRecord::Mark { name, at } => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"{name}\",\
                         \"pid\":1,\"tid\":0,\"ts\":{at}}}"
                    );
                }
                TraceRecord::Instant { name, at } => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"{name}\",\
                         \"pid\":1,\"tid\":0,\"ts\":{at}}}"
                    );
                }
                TraceRecord::Window { name, start, end } => {
                    let dur = end.saturating_sub(*start);
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"X\",\"cat\":\"recovery\",\"name\":\"{name}\",\
                         \"pid\":1,\"tid\":0,\"ts\":{start},\"dur\":{dur}}}"
                    );
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }

    pub(crate) fn render_metrics(&self, format: MetricsFormat) -> String {
        let mut out = String::new();
        match format {
            MetricsFormat::Csv => {
                out.push_str(CSV_HEADER);
                out.push('\n');
                for s in &self.samples {
                    out.push_str(&s.csv_row());
                    out.push('\n');
                }
            }
            MetricsFormat::Jsonl => {
                for s in &self.samples {
                    // MetricsSample is flat scalars; serialization
                    // cannot fail.
                    if let Ok(line) = serde_json::to_string(s) {
                        out.push_str(&line);
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::value::{lookup, Value};

    fn traced_core() -> ObsCore {
        ObsCore::new(&ObsConfig {
            trace_out: Some(std::path::PathBuf::from("unused.json")),
            ..ObsConfig::default()
        })
    }

    /// Drives one full demand-read lifecycle through the tracer.
    fn one_read(core: &mut ObsCore, id: u64, base: Cycle, source: ServiceSource) {
        core.issue(id, 0, 0x40 * id, ReqClass::DemandRead, base, base + 2);
        core.stamp(id, Point::LinkLaunch, base + 5);
        core.arrive(id, 3, base + 13);
        core.stamp(id, Point::ServiceStart, base + 20);
        core.stamp(id, Point::RespReady, base + 45);
        core.finish(id, source, base + 53);
    }

    #[test]
    fn spans_telescope_into_total() {
        let mut core = traced_core();
        one_read(&mut core, 1, 100, ServiceSource::RowBufferConflict);
        let (count, cycles) = core.traced_reads();
        assert_eq!(count, 1);
        assert_eq!(cycles, 53, "stage sums must telescope to issue→deliver");
        let b = core.breakdown();
        assert_eq!(b.demand_reads, 1);
        assert!((b.mean_total - 53.0).abs() < 1e-9);
        let stage_sum: f64 = b.stages.iter().map(|s| s.mean_cycles).sum();
        assert!((stage_sum - b.mean_total).abs() < 1e-9);
        assert_eq!(b.mean_of("bank_conflict"), 25.0);
    }

    #[test]
    fn cube_hop_splits_host_queue_and_still_telescopes() {
        let mut core = traced_core();
        core.issue(1, 0, 0x40, ReqClass::DemandRead, 100, 102);
        core.cube_arrive(1, 2, 110);
        core.stamp(1, Point::LinkLaunch, 115);
        core.arrive(1, 3, 123);
        core.stamp(1, Point::ServiceStart, 130);
        core.stamp(1, Point::RespReady, 155);
        core.finish(1, ServiceSource::RowBufferMiss, 163);
        let (count, cycles) = core.traced_reads();
        assert_eq!(count, 1);
        assert_eq!(cycles, 63, "cube_link edge must keep telescoping");
        let b = core.breakdown();
        assert_eq!(b.mean_of("cube_link"), 8.0);
        assert_eq!(b.mean_of("host_queue"), 5.0);
        let text = core.render_trace_json();
        assert!(text.contains("cube_link"));
        assert!(text.contains("\"cube\":2"));
    }

    #[test]
    fn trace_json_parses_and_ts_is_monotonic_per_track() {
        let mut core = traced_core();
        one_read(&mut core, 1, 100, ServiceSource::RowBufferMiss);
        one_read(&mut core, 2, 130, ServiceSource::PrefetchBuffer);
        core.fetch_span(3, 1, 42, 90, 160);
        core.mark("fault_drop_request", 140);
        core.window("rollback", 100, 150);

        let text = core.render_trace_json();
        let doc: Value = serde_json::from_str(&text).expect("trace JSON must parse");
        let Value::Map(entries) = &doc else {
            panic!("top level must be an object")
        };
        let Some(Value::Seq(events)) = lookup(entries, "traceEvents") else {
            panic!("traceEvents must be an array")
        };
        // Async begin/end pairs must be ts-monotonic within one id.
        let mut last_ts: HashMap<String, u64> = HashMap::new();
        let mut names = std::collections::HashSet::new();
        for ev in events {
            let Value::Map(e) = ev else {
                panic!("event must be an object")
            };
            let Some(Value::Str(ph)) = lookup(e, "ph") else {
                panic!("event must have ph")
            };
            if ph == "M" {
                continue;
            }
            let Some(Value::U64(ts)) = lookup(e, "ts") else {
                panic!("event must have integer ts")
            };
            if let Some(Value::Str(name)) = lookup(e, "name") {
                names.insert(name.clone());
            }
            if let Some(Value::Str(id)) = lookup(e, "id") {
                let prev = last_ts.entry(id.clone()).or_insert(0);
                assert!(*ts >= *prev, "ts must be monotonic within track {id}");
                *prev = *ts;
            }
        }
        for expected in [
            "cache_mshr",
            "host_queue",
            "req_link",
            "vault_queue",
            "bank_miss",
            "pfbuffer_hit",
            "resp_link",
            "row_fetch",
            "fault_drop_request",
            "rollback",
        ] {
            assert!(names.contains(expected), "missing span type {expected}");
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut core = ObsCore::new(&ObsConfig {
            trace_out: Some(std::path::PathBuf::from("unused.json")),
            trace_capacity: 8,
            ..ObsConfig::default()
        });
        for id in 0..10 {
            one_read(&mut core, id, 100 * id, ServiceSource::RowBufferHit);
        }
        let report = core.export_report();
        assert_eq!(report.records, 8);
        // 10 reads × 6 spans = 60 records offered, 8 retained.
        assert_eq!(report.dropped, 52);
        // The exported JSON must carry the same accounting as metadata.
        let text = core.render_trace_json();
        assert!(text.contains("\"name\":\"trace_ring\""));
        assert!(text.contains("\"records\":8,\"dropped\":52,\"capacity\":8"));
    }

    #[test]
    fn filter_keeps_marks_and_windows() {
        let mut core = ObsCore::new(&ObsConfig {
            trace_out: Some(std::path::PathBuf::from("unused.json")),
            trace_filter: Some("bank".to_string()),
            ..ObsConfig::default()
        });
        one_read(&mut core, 1, 100, ServiceSource::RowBufferHit);
        core.mark("watchdog_trip", 500);
        let text = core.render_trace_json();
        assert!(text.contains("bank_hit"));
        assert!(!text.contains("host_queue"));
        assert!(text.contains("watchdog_trip"));
    }

    #[test]
    fn store_lifecycles_do_not_skew_histograms() {
        let mut core = traced_core();
        core.issue(9, 0, 0x1000, ReqClass::Store, 10, 12);
        core.stamp(9, Point::LinkLaunch, 14);
        core.arrive(9, 1, 20);
        core.stamp(9, Point::RespReady, 21);
        core.finish(9, ServiceSource::RowBufferMiss, 30);
        assert_eq!(core.traced_reads(), (0, 0));
        assert_eq!(core.breakdown().demand_reads, 0);
    }

    #[test]
    fn abort_forgets_the_request() {
        let mut core = traced_core();
        core.issue(5, 0, 0x80, ReqClass::DemandRead, 10, 12);
        core.abort(5);
        core.finish(5, ServiceSource::RowBufferHit, 99);
        assert_eq!(core.traced_reads(), (0, 0));
    }

    #[test]
    fn metrics_row_cap_drops_oldest() {
        let mut core = traced_core();
        for i in 0..4 {
            core.push_sample(MetricsSample {
                cycle: i,
                ..MetricsSample::default()
            });
        }
        assert_eq!(core.samples_len(), 4);
        let csv = core.render_metrics(MetricsFormat::Csv);
        assert!(csv.starts_with(CSV_HEADER));
        assert_eq!(csv.lines().count(), 5);
    }
}
