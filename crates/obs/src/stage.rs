//! The span taxonomy: pipeline stages a request passes through.

use camps_types::request::ServiceSource;

/// One stage of a request's life inside the memory system. Span names
/// in the exported trace are [`Stage::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// MSHR allocation: first attempt → host-queue entry (this is the
    /// MSHR-full / host-backpressure stall time; zero when uncontended).
    CacheMshr,
    /// Crossing the inter-cube interconnect to a remote cube's host
    /// queue (absent on single-cube machines and for the host-attached
    /// cube 0, whose requests take zero hops).
    CubeLink,
    /// Waiting in the host-side queue for serial-link credit.
    HostQueue,
    /// Request packet crossing serdes link + crossbar to the vault.
    ReqLink,
    /// Waiting in the vault's read/write queue (incl. full-queue retry).
    VaultQueue,
    /// Column access on an already-open row.
    BankHit,
    /// Activation + column access on an idle bank.
    BankMiss,
    /// Precharge + activation + column access (row-buffer conflict).
    BankConflict,
    /// Served straight from the vault's prefetch buffer.
    PfBufferHit,
    /// Response crossing the TSV/serdes path back to the host.
    RespLink,
}

/// Number of distinct stages.
pub const STAGE_COUNT: usize = 10;

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::CacheMshr,
        Stage::CubeLink,
        Stage::HostQueue,
        Stage::ReqLink,
        Stage::VaultQueue,
        Stage::BankHit,
        Stage::BankMiss,
        Stage::BankConflict,
        Stage::PfBufferHit,
        Stage::RespLink,
    ];

    /// Stable name used in trace JSON, metrics, and breakdown tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::CacheMshr => "cache_mshr",
            Stage::CubeLink => "cube_link",
            Stage::HostQueue => "host_queue",
            Stage::ReqLink => "req_link",
            Stage::VaultQueue => "vault_queue",
            Stage::BankHit => "bank_hit",
            Stage::BankMiss => "bank_miss",
            Stage::BankConflict => "bank_conflict",
            Stage::PfBufferHit => "pfbuffer_hit",
            Stage::RespLink => "resp_link",
        }
    }

    /// Index into per-stage arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The service stage a response's [`ServiceSource`] maps to.
    #[must_use]
    pub fn from_source(source: ServiceSource) -> Stage {
        match source {
            ServiceSource::PrefetchBuffer => Stage::PfBufferHit,
            ServiceSource::RowBufferHit => Stage::BankHit,
            ServiceSource::RowBufferMiss => Stage::BankMiss,
            ServiceSource::RowBufferConflict => Stage::BankConflict,
        }
    }
}

/// A stampable point in a request's lifecycle (between-stage edges that
/// are not captured by [`TraceHandle::issue`]/[`TraceHandle::arrive`]/
/// [`TraceHandle::finish`]).
///
/// [`TraceHandle::issue`]: crate::TraceHandle::issue
/// [`TraceHandle::arrive`]: crate::TraceHandle::arrive
/// [`TraceHandle::finish`]: crate::TraceHandle::finish
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Point {
    /// Popped from the host queue onto a serial link.
    LinkLaunch,
    /// Selected by the vault scheduler (column issue or buffer serve).
    ServiceStart,
    /// Vault produced the response (service complete).
    RespReady,
}

/// What kind of request a lifecycle record describes. Only demand reads
/// feed the latency histograms; stores/writebacks are acked early by
/// the vault and core-side prefetches wake no one, so their "latency"
/// would skew the AMAT decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqClass {
    /// A demand load miss leaving the LLC.
    DemandRead,
    /// A store / streamed write.
    Store,
    /// A dirty-block writeback.
    Writeback,
    /// A core-side (Base scheme) prefetch read.
    CorePrefetch,
}

impl ReqClass {
    /// True for the classes whose spans are worth drawing.
    #[must_use]
    pub fn traced(self) -> bool {
        matches!(self, ReqClass::DemandRead | ReqClass::CorePrefetch)
    }
}
