//! The sampled metrics time-series.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// Version stamped into every row. Bump when fields change meaning or
/// are removed; adding fields with `#[serde(default)]` is compatible.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Output encoding for the metrics series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// One JSON object per line.
    Jsonl,
    /// Header row + one comma-separated row per sample.
    Csv,
}

impl MetricsFormat {
    /// CSV for a `.csv` extension, JSONL otherwise.
    #[must_use]
    pub fn for_path(path: &Path) -> MetricsFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some(e) if e.eq_ignore_ascii_case("csv") => MetricsFormat::Csv,
            _ => MetricsFormat::Jsonl,
        }
    }
}

/// One row of the periodic metrics series. Counters are cumulative
/// since the start of the measured run (rates are first differences);
/// queue depths and occupancies are instantaneous gauges.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSample {
    /// Schema version ([`METRICS_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Sample cycle.
    pub cycle: u64,
    /// Instructions retired across all cores.
    pub retired: u64,
    /// Responses delivered back to the host.
    pub responses: u64,
    /// Demand reads completed by the memory system.
    pub mem_reads: u64,
    /// Demand reads served by a prefetch buffer.
    pub buffer_served: u64,
    /// Host-side queue depth (gauge).
    pub host_queue: u64,
    /// MSHR entries in flight (gauge).
    pub mshr_in_flight: u64,
    /// Dirty blocks waiting in the host writeback queue (gauge).
    pub writeback_queue: u64,
    /// Requests across all vault read queues (gauge).
    pub vault_read_queue: u64,
    /// Requests across all vault write queues (gauge).
    pub vault_write_queue: u64,
    /// Rows resident across all prefetch buffers (gauge).
    pub buffer_rows: u64,
    /// Total prefetch-buffer capacity, rows.
    pub buffer_capacity: u64,
    /// Row-utilization-table entries live across vaults (gauge).
    pub rut_entries: u64,
    /// Conflict-table entries live across vaults (gauge).
    pub ct_entries: u64,
    /// Bank accesses that hit an open row.
    pub row_hits: u64,
    /// Bank accesses that activated an idle bank.
    pub row_misses: u64,
    /// Bank accesses that displaced another row (conflicts).
    pub row_conflicts: u64,
    /// Demand accesses served by the prefetch buffers.
    pub buffer_hits: u64,
    /// Whole rows prefetched.
    pub prefetches: u64,
    /// Prefetched rows referenced by at least one demand read before
    /// leaving the buffer (accuracy numerator; `pf_useful / prefetches`).
    #[serde(default)]
    pub pf_useful: u64,
    /// Prefetched rows evicted, invalidated, or drained without ever
    /// serving a demand read (wasted-fetch counter).
    #[serde(default)]
    pub pf_unused_evictions: u64,
    /// Mean demand-read memory latency so far (`amat_mem` accumulator).
    pub amat_mem_mean: f64,
    /// Demand reads with a complete traced lifecycle.
    pub traced_reads: u64,
    /// Total cycles across all stages of those reads (reconciles with
    /// `amat_mem_mean * traced_reads` on merge-free workloads).
    pub traced_cycles: u64,
    /// Scheduler iterations executed (event engine: per wake).
    pub wake_ticks: u64,
    /// Cycles the event engine skipped without ticking.
    pub cycles_skipped: u64,
    /// Host wall-clock nanoseconds the self-profiler has attributed so
    /// far (0 when profiling is off — a *host* clock, not sim time).
    #[serde(default)]
    pub host_profile_ns: u64,
    /// Event-engine wakes whose tick made no forward progress so far
    /// (0 when profiling is off or under the polling engine).
    #[serde(default)]
    pub spurious_wakes: u64,
    /// Worst per-row activation count inside any refresh window so far
    /// (max across vaults — the RowHammer exposure gauge).
    #[serde(default)]
    pub worst_row_window_acts: u64,
    /// TRR-style neighbor refreshes injected by the rowguard mitigation.
    #[serde(default)]
    pub rowguard_mitigations: u64,
    /// Cubes in the pool (1 on pre-topology machines).
    #[serde(default)]
    pub cubes: u64,
    /// Requests + responses currently crossing the inter-cube
    /// interconnect (gauge; 0 on single-cube machines).
    #[serde(default)]
    pub cube_link_inflight: u64,
    /// Per-cube host-queue depths (gauge; rendered as one `;`-joined
    /// CSV cell so the column count stays fixed across cube counts).
    #[serde(default)]
    pub cube_host_queue: Vec<u64>,
}

/// Field order shared by the CSV header and rows — keep in sync with
/// [`MetricsSample::csv_row`].
// Only the feature-gated `core` module renders CSV; keep the encoding
// next to the struct it mirrors even in compiled-out builds.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) const CSV_HEADER: &str = "schema,cycle,retired,responses,mem_reads,buffer_served,\
host_queue,mshr_in_flight,writeback_queue,vault_read_queue,vault_write_queue,buffer_rows,\
buffer_capacity,rut_entries,ct_entries,row_hits,row_misses,row_conflicts,buffer_hits,\
prefetches,pf_useful,pf_unused_evictions,amat_mem_mean,traced_reads,traced_cycles,wake_ticks,\
cycles_skipped,host_profile_ns,spurious_wakes,worst_row_window_acts,rowguard_mitigations,cubes,\
cube_link_inflight,cube_host_queue";

impl MetricsSample {
    /// One CSV row, field order matching [`CSV_HEADER`].
    #[must_use]
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    pub(crate) fn csv_row(&self) -> String {
        let cube_host_queue = self
            .cube_host_queue
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(";");
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{},{},{},{},\
             {},{},{},{},{},{},{cube_host_queue}",
            self.schema,
            self.cycle,
            self.retired,
            self.responses,
            self.mem_reads,
            self.buffer_served,
            self.host_queue,
            self.mshr_in_flight,
            self.writeback_queue,
            self.vault_read_queue,
            self.vault_write_queue,
            self.buffer_rows,
            self.buffer_capacity,
            self.rut_entries,
            self.ct_entries,
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
            self.buffer_hits,
            self.prefetches,
            self.pf_useful,
            self.pf_unused_evictions,
            self.amat_mem_mean,
            self.traced_reads,
            self.traced_cycles,
            self.wake_ticks,
            self.cycles_skipped,
            self.host_profile_ns,
            self.spurious_wakes,
            self.worst_row_window_acts,
            self.rowguard_mitigations,
            self.cubes,
            self.cube_link_inflight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_header_matches_row_arity() {
        let row = MetricsSample::default().csv_row();
        assert_eq!(
            CSV_HEADER.split(',').count(),
            row.split(',').count(),
            "CSV header and row field counts diverged"
        );
    }

    #[test]
    fn jsonl_round_trip() {
        let s = MetricsSample {
            schema: METRICS_SCHEMA_VERSION,
            cycle: 4096,
            retired: 1000,
            amat_mem_mean: 211.5,
            traced_reads: 7,
            traced_cycles: 1480,
            ..MetricsSample::default()
        };
        let line = serde_json::to_string(&s).unwrap();
        let back: MetricsSample = serde_json::from_str(&line).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn format_by_extension() {
        assert_eq!(
            MetricsFormat::for_path(Path::new("out.csv")),
            MetricsFormat::Csv
        );
        assert_eq!(
            MetricsFormat::for_path(Path::new("out.CSV")),
            MetricsFormat::Csv
        );
        assert_eq!(
            MetricsFormat::for_path(Path::new("out.jsonl")),
            MetricsFormat::Jsonl
        );
        assert_eq!(
            MetricsFormat::for_path(Path::new("metrics")),
            MetricsFormat::Jsonl
        );
    }
}
