//! Cross-crate integration: pieces from different crates wired together
//! in ways the unit tests can't cover.

use camps_sim::camps::hmc::HmcDevice;
use camps_sim::camps::system::System;
use camps_sim::camps_cpu::trace::{TraceOp, TraceSource, VecTrace};
use camps_sim::camps_obs::Profiler;
use camps_sim::camps_prefetch::SchemeKind;
use camps_sim::camps_types::addr::{MappingScheme, PhysAddr};
use camps_sim::camps_types::config::{PagePolicy, SchedulerKind, SystemConfig};
use camps_sim::camps_types::request::{AccessKind, CoreId, MemRequest, RequestId};

fn traces_for(cfg: &SystemConfig, stride: u64) -> Vec<Box<dyn TraceSource>> {
    (0..cfg.cpu.cores)
        .map(|c| {
            let ops: Vec<TraceOp> = (0..512u64)
                .map(|i| TraceOp::load(2, PhysAddr((u64::from(c) << 26) + i * stride)))
                .collect();
            Box::new(VecTrace::new(format!("t{c}"), ops)) as Box<dyn TraceSource>
        })
        .collect()
}

#[test]
fn mshr_merging_collapses_same_block_loads() {
    // All cores hammer the same few blocks: MSHRs must merge, and the
    // number of memory reads stays far below the number of core loads.
    let cfg = SystemConfig::small();
    let mut sys = System::new(&cfg, SchemeKind::Nopf, traces_for(&cfg, 8)).unwrap();
    let r = sys.run(8_000, 1_000_000, "merge").unwrap();
    let core_loads: u64 = r.core_stats.iter().map(|s| s.loads.get()).sum();
    assert!(
        r.vaults.reads.get() * 4 < core_loads,
        "memory reads {} must be well below core loads {core_loads}",
        r.vaults.reads.get()
    );
}

#[test]
fn all_address_mappings_simulate() {
    for scheme in MappingScheme::ALL {
        let mut cfg = SystemConfig::small();
        cfg.hmc.mapping = scheme;
        cfg.validate().unwrap();
        let mut sys = System::new(&cfg, SchemeKind::Camps, traces_for(&cfg, 64)).unwrap();
        let r = sys.run(5_000, 1_000_000, "mapping").unwrap();
        assert!(r.geomean_ipc() > 0.0, "{scheme} produced no progress");
    }
}

#[test]
fn scheduler_and_page_policy_combinations_run() {
    for sched in [SchedulerKind::FrFcfs, SchedulerKind::Fcfs] {
        for page in [PagePolicy::Open, PagePolicy::Closed] {
            let mut cfg = SystemConfig::small();
            cfg.vault.scheduler = sched;
            cfg.vault.page_policy = page;
            let mut sys = System::new(&cfg, SchemeKind::CampsMod, traces_for(&cfg, 192)).unwrap();
            let r = sys.run(5_000, 2_000_000, "combo").unwrap();
            assert!(r.geomean_ipc() > 0.0, "{sched:?}/{page:?}");
        }
    }
}

#[test]
fn closed_page_has_no_conflicts_open_page_does() {
    // Two cores ping-pong rows in the same bank: open page converts the
    // alternation into conflicts, closed page into plain misses.
    let mut open_cfg = SystemConfig::small();
    open_cfg.cpu.cores = 2;
    let mk = |_cfg: &SystemConfig| -> Vec<Box<dyn TraceSource>> {
        // Same bank (bank/vault bits equal), rows 64 KiB apart under the
        // small geometry.
        (0..2u64)
            .map(|c| {
                let ops = vec![TraceOp::load(1, PhysAddr(c * (1 << 17)))];
                Box::new(VecTrace::new(format!("p{c}"), ops)) as Box<dyn TraceSource>
            })
            .collect()
    };
    let mut sys = System::new(&open_cfg, SchemeKind::Nopf, mk(&open_cfg)).unwrap();
    let open = sys.run(2_000, 1_000_000, "open").unwrap();

    let mut closed_cfg = open_cfg.clone();
    closed_cfg.vault.page_policy = PagePolicy::Closed;
    let mut sys = System::new(&closed_cfg, SchemeKind::Nopf, mk(&closed_cfg)).unwrap();
    let closed = sys.run(2_000, 1_000_000, "closed").unwrap();

    assert!(closed.vaults.row_conflicts.get() < open.vaults.row_conflicts.get());
}

#[test]
fn hmc_device_standalone_agrees_with_decode() {
    // Drive the cube directly (no cores/caches) and check request routing
    // against the address mapping.
    let cfg = SystemConfig::paper_default();
    let mut hmc = HmcDevice::new(&cfg, SchemeKind::Nopf).unwrap();
    let mapping = *hmc.mapping();
    let addr = PhysAddr(0x0ABC_DE40);
    assert!(hmc.submit(MemRequest {
        id: RequestId(9),
        addr,
        kind: AccessKind::Read,
        core: CoreId(3),
        created_at: 0,
    }));
    let mut out = Vec::new();
    let mut now = 0;
    while out.is_empty() && now < 100_000 {
        now += 1;
        hmc.tick(now, &mut out, &mut Profiler::off());
    }
    assert_eq!(out[0].id, RequestId(9));
    assert_eq!(out[0].core, CoreId(3));
    let stats = hmc.finalize(now);
    assert_eq!(stats.reads.get(), 1);
    // The decode agrees with what the vault served.
    let d = mapping.decode(addr);
    assert!(u32::from(d.vault) < cfg.hmc.vaults);
}

#[test]
fn write_heavy_workload_drains_cleanly() {
    let cfg = SystemConfig::small();
    let traces: Vec<Box<dyn TraceSource>> = (0..cfg.cpu.cores)
        .map(|c| {
            let ops: Vec<TraceOp> = (0..256u64)
                .map(|i| {
                    let a = PhysAddr((u64::from(c) << 26) + i * 4096);
                    if i % 2 == 0 {
                        TraceOp::store(1, a)
                    } else {
                        TraceOp::load(1, a)
                    }
                })
                .collect();
            Box::new(VecTrace::new(format!("w{c}"), ops)) as Box<dyn TraceSource>
        })
        .collect();
    let mut sys = System::new(&cfg, SchemeKind::CampsMod, traces).unwrap();
    let r = sys.run(6_000, 2_000_000, "writes").unwrap();
    assert!(
        r.vaults.writes.get() > 0,
        "stores must reach memory as writes/fills"
    );
    assert!(r.geomean_ipc() > 0.0);
}

#[test]
fn audit_ledger_accounts_every_vault_request() {
    // The core-side auditor feeds the stats-side ledger: after a run the
    // per-vault injected counts must cover every memory read the vaults
    // served (reads ⊆ injections; prefetch-buffer hits are served
    // host-side of DRAM but still enter through the audited submit path).
    let mut cfg = SystemConfig::small();
    cfg.integrity.audit = true;
    let mut sys = System::new(&cfg, SchemeKind::Nopf, traces_for(&cfg, 4096)).unwrap();
    let r = sys.run(4_000, 1_000_000, "ledger").unwrap();
    let ledger = sys.memory().audit_ledger();
    assert_eq!(ledger.vaults.len(), cfg.hmc.vaults as usize);
    assert!(
        ledger.injected() >= r.vaults.reads.get(),
        "ledger {} vs vault reads {}",
        ledger.injected(),
        r.vaults.reads.get()
    );
    assert!(
        ledger.completed() <= ledger.injected(),
        "completions can never outrun injections"
    );
}

#[test]
fn tiny_prefetch_buffer_still_works() {
    let mut cfg = SystemConfig::small();
    cfg.prefetch.entries = 1; // degenerate capacity: constant eviction
    cfg.validate().unwrap();
    let mut sys = System::new(&cfg, SchemeKind::Base, traces_for(&cfg, 64)).unwrap();
    let r = sys.run(5_000, 2_000_000, "tiny-buffer").unwrap();
    assert!(r.vaults.prefetches.get() > 0);
    // With one entry, most prefetches die unreferenced — accuracy must
    // still be a sane fraction.
    let acc = r.prefetch_accuracy();
    assert!((0.0..=1.0).contains(&acc));
}
