//! End-to-end integration tests: full-system runs at miniature scale
//! asserting the paper's qualitative results and cross-crate invariants.

use camps_sim::prelude::*;

/// Miniature run length that keeps debug-build tests fast while exercising
/// warmup, detailed simulation, prefetching, and finalization.
fn tiny() -> RunLength {
    RunLength {
        warmup_instructions: 6_000,
        instructions: 6_000,
        max_cycles: 2_000_000,
    }
}

fn run(mix_id: &str, scheme: SchemeKind) -> RunResult {
    let cfg = SystemConfig::paper_default();
    let mix = Mix::by_id(mix_id).expect("known mix");
    run_mix(&cfg, mix, scheme, &tiny(), 0xFEED)
}

#[test]
fn every_scheme_completes_every_class() {
    for mix in ["HM2", "LM2", "MX2"] {
        for scheme in SchemeKind::ALL {
            let r = run(mix, scheme);
            assert_eq!(r.ipc.len(), 8, "{mix}/{scheme}");
            assert!(
                r.ipc.iter().all(|&i| i > 0.0 && i <= 4.0),
                "{mix}/{scheme}: IPC out of range: {:?}",
                r.ipc
            );
            assert!(
                r.cycles > 0 && r.cycles < 2_000_000,
                "{mix}/{scheme} hit the cycle cap"
            );
        }
    }
}

#[test]
fn nopf_never_prefetches_and_others_do() {
    let nopf = run("HM1", SchemeKind::Nopf);
    assert_eq!(nopf.vaults.prefetches.get(), 0);
    assert_eq!(nopf.vaults.buffer_hits.get(), 0);
    for scheme in [SchemeKind::Base, SchemeKind::Mmd, SchemeKind::CampsMod] {
        let r = run("HM1", scheme);
        assert!(
            r.vaults.prefetches.get() > 0,
            "{scheme} must prefetch on HM1"
        );
        assert!(
            r.vaults.buffer_hits.get() > 0,
            "{scheme}'s prefetches must be consumed"
        );
    }
}

#[test]
fn base_eliminates_row_buffer_conflicts() {
    // §5.2: BASE is excluded from Figure 6 "because the whole row is
    // prefetched every time a row is opened … so there are no row-buffer
    // conflicts".
    let r = run("MX3", SchemeKind::Base);
    assert_eq!(
        r.vaults.row_conflicts.get(),
        0,
        "BASE precharges after every fetch"
    );
    // And it pays for it with the lowest accuracy (Figure 7).
    let camps = run("MX3", SchemeKind::CampsMod);
    assert!(
        r.prefetch_accuracy() < camps.prefetch_accuracy(),
        "BASE accuracy {:.2} must trail CAMPS-MOD {:.2}",
        r.prefetch_accuracy(),
        camps.prefetch_accuracy()
    );
}

#[test]
fn camps_mod_reduces_conflicts_versus_mmd() {
    // Figure 6's ordering: the conflict-aware scheme has fewer row-buffer
    // conflicts than the conflict-blind MMD.
    let mmd = run("HM2", SchemeKind::Mmd);
    let camps = run("HM2", SchemeKind::CampsMod);
    assert!(
        camps.conflict_rate() < mmd.conflict_rate(),
        "CAMPS-MOD {:.3} must be below MMD {:.3}",
        camps.conflict_rate(),
        mmd.conflict_rate()
    );
}

#[test]
fn prefetching_beats_nopf_on_high_memory_mixes() {
    let nopf = run("HM1", SchemeKind::Nopf);
    let camps = run("HM1", SchemeKind::CampsMod);
    assert!(
        camps.geomean_ipc() > nopf.geomean_ipc(),
        "CAMPS-MOD {:.3} must beat NOPF {:.3} on HM1",
        camps.geomean_ipc(),
        nopf.geomean_ipc()
    );
    // Memory-side prefetching must also cut main-memory latency.
    assert!(camps.amat_mem < nopf.amat_mem);
}

#[test]
fn runs_are_deterministic() {
    let a = run("LM3", SchemeKind::Camps);
    let b = run("LM3", SchemeKind::Camps);
    assert_eq!(a.ipc, b.ipc);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.vaults, b.vaults);
    assert_eq!(a.energy_nj, b.energy_nj);
}

#[test]
fn different_seeds_change_outcomes() {
    let cfg = SystemConfig::paper_default();
    let mix = Mix::by_id("LM3").unwrap();
    let a = run_mix(&cfg, mix, SchemeKind::Nopf, &tiny(), 1);
    let b = run_mix(&cfg, mix, SchemeKind::Nopf, &tiny(), 2);
    assert_ne!(a.cycles, b.cycles, "seeded workloads must differ");
}

#[test]
fn speedup_table_normalizes_against_base() {
    let results: Vec<RunResult> = [SchemeKind::Base, SchemeKind::CampsMod]
        .iter()
        .map(|&s| run("MX4", s))
        .collect();
    let cells = speedup_table(&results);
    assert_eq!(cells.len(), 2);
    let base = cells.iter().find(|c| c.scheme == SchemeKind::Base).unwrap();
    assert!((base.speedup - 1.0).abs() < 1e-12);
    assert!(average_speedup(&cells, SchemeKind::CampsMod).is_some());
}

#[test]
fn hm_mixes_are_more_memory_bound_than_lm() {
    let hm = run("HM1", SchemeKind::Nopf);
    let lm = run("LM1", SchemeKind::Nopf);
    assert!(
        hm.geomean_ipc() < lm.geomean_ipc(),
        "HM1 (IPC {:.3}) must be slower than LM1 (IPC {:.3})",
        hm.geomean_ipc(),
        lm.geomean_ipc()
    );
    // And they stress memory harder.
    assert!(hm.vaults.reads.get() > lm.vaults.reads.get());
}

#[test]
fn energy_accounts_follow_activity() {
    let r = run("MX2", SchemeKind::CampsMod);
    let e = &r.vaults.energy;
    assert!(e.activates > 0 && e.read_bursts > 0);
    assert!(e.row_fetches == r.vaults.prefetches.get());
    assert!(r.energy_nj > 0.0);
    // Precharges can exceed activates by at most the open rows at the end
    // — sanity band, not equality.
    assert!(e.precharges <= e.activates + 512);
}
