//! End-to-end integration tests: full-system runs at miniature scale
//! asserting the paper's qualitative results and cross-crate invariants.

use camps_sim::prelude::*;

/// Miniature run length that keeps debug-build tests fast while exercising
/// warmup, detailed simulation, prefetching, and finalization.
fn tiny() -> RunLength {
    RunLength {
        warmup_instructions: 6_000,
        instructions: 6_000,
        max_cycles: 2_000_000,
    }
}

fn run(mix_id: &str, scheme: SchemeKind) -> RunResult {
    let cfg = SystemConfig::paper_default();
    let mix = Mix::by_id(mix_id).expect("known mix");
    run_mix(&cfg, mix, scheme, &tiny(), 0xFEED).expect("clean run")
}

#[test]
fn every_scheme_completes_every_class() {
    for mix in ["HM2", "LM2", "MX2"] {
        for scheme in SchemeKind::ALL {
            let r = run(mix, scheme);
            assert_eq!(r.ipc.len(), 8, "{mix}/{scheme}");
            assert!(
                r.ipc.iter().all(|&i| i > 0.0 && i <= 4.0),
                "{mix}/{scheme}: IPC out of range: {:?}",
                r.ipc
            );
            assert!(
                r.cycles > 0 && r.cycles < 2_000_000,
                "{mix}/{scheme} hit the cycle cap"
            );
        }
    }
}

#[test]
fn nopf_never_prefetches_and_others_do() {
    let nopf = run("HM1", SchemeKind::Nopf);
    assert_eq!(nopf.vaults.prefetches.get(), 0);
    assert_eq!(nopf.vaults.buffer_hits.get(), 0);
    for scheme in [SchemeKind::Base, SchemeKind::Mmd, SchemeKind::CampsMod] {
        let r = run("HM1", scheme);
        assert!(
            r.vaults.prefetches.get() > 0,
            "{scheme} must prefetch on HM1"
        );
        assert!(
            r.vaults.buffer_hits.get() > 0,
            "{scheme}'s prefetches must be consumed"
        );
    }
}

#[test]
fn base_eliminates_row_buffer_conflicts() {
    // §5.2: BASE is excluded from Figure 6 "because the whole row is
    // prefetched every time a row is opened … so there are no row-buffer
    // conflicts".
    let r = run("MX3", SchemeKind::Base);
    assert_eq!(
        r.vaults.row_conflicts.get(),
        0,
        "BASE precharges after every fetch"
    );
    // And it pays for it with the lowest accuracy (Figure 7).
    let camps = run("MX3", SchemeKind::CampsMod);
    assert!(
        r.prefetch_accuracy() < camps.prefetch_accuracy(),
        "BASE accuracy {:.2} must trail CAMPS-MOD {:.2}",
        r.prefetch_accuracy(),
        camps.prefetch_accuracy()
    );
}

#[test]
fn camps_mod_reduces_conflicts_versus_mmd() {
    // Figure 6's ordering: the conflict-aware scheme has fewer row-buffer
    // conflicts than the conflict-blind MMD.
    let mmd = run("HM2", SchemeKind::Mmd);
    let camps = run("HM2", SchemeKind::CampsMod);
    assert!(
        camps.conflict_rate() < mmd.conflict_rate(),
        "CAMPS-MOD {:.3} must be below MMD {:.3}",
        camps.conflict_rate(),
        mmd.conflict_rate()
    );
}

#[test]
fn prefetching_beats_nopf_on_high_memory_mixes() {
    let nopf = run("HM1", SchemeKind::Nopf);
    let camps = run("HM1", SchemeKind::CampsMod);
    assert!(
        camps.geomean_ipc() > nopf.geomean_ipc(),
        "CAMPS-MOD {:.3} must beat NOPF {:.3} on HM1",
        camps.geomean_ipc(),
        nopf.geomean_ipc()
    );
    // Memory-side prefetching must also cut main-memory latency.
    assert!(camps.amat_mem < nopf.amat_mem);
}

#[test]
fn runs_are_deterministic() {
    let a = run("LM3", SchemeKind::Camps);
    let b = run("LM3", SchemeKind::Camps);
    assert_eq!(a.ipc, b.ipc);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.vaults, b.vaults);
    assert_eq!(a.energy_nj, b.energy_nj);
}

#[test]
fn different_seeds_change_outcomes() {
    let cfg = SystemConfig::paper_default();
    let mix = Mix::by_id("LM3").unwrap();
    let a = run_mix(&cfg, mix, SchemeKind::Nopf, &tiny(), 1).unwrap();
    let b = run_mix(&cfg, mix, SchemeKind::Nopf, &tiny(), 2).unwrap();
    assert_ne!(a.cycles, b.cycles, "seeded workloads must differ");
}

#[test]
fn speedup_table_normalizes_against_base() {
    let results: Vec<RunResult> = [SchemeKind::Base, SchemeKind::CampsMod]
        .iter()
        .map(|&s| run("MX4", s))
        .collect();
    let cells = speedup_table(&results);
    assert_eq!(cells.len(), 2);
    let base = cells.iter().find(|c| c.scheme == SchemeKind::Base).unwrap();
    assert!((base.speedup - 1.0).abs() < 1e-12);
    assert!(average_speedup(&cells, SchemeKind::CampsMod).is_some());
}

#[test]
fn hm_mixes_are_more_memory_bound_than_lm() {
    let hm = run("HM1", SchemeKind::Nopf);
    let lm = run("LM1", SchemeKind::Nopf);
    assert!(
        hm.geomean_ipc() < lm.geomean_ipc(),
        "HM1 (IPC {:.3}) must be slower than LM1 (IPC {:.3})",
        hm.geomean_ipc(),
        lm.geomean_ipc()
    );
    // And they stress memory harder.
    assert!(hm.vaults.reads.get() > lm.vaults.reads.get());
}

#[test]
fn energy_accounts_follow_activity() {
    let r = run("MX2", SchemeKind::CampsMod);
    let e = &r.vaults.energy;
    assert!(e.activates > 0 && e.read_bursts > 0);
    assert!(e.row_fetches == r.vaults.prefetches.get());
    assert!(r.energy_nj > 0.0);
    // Precharges can exceed activates by at most the open rows at the end
    // — sanity band, not equality.
    assert!(e.precharges <= e.activates + 512);
}

#[test]
fn every_paper_scheme_is_bit_for_bit_reproducible() {
    // Regression guard for the determinism contract: two runs of the
    // same (mix, scheme, seed) must produce identical metrics for every
    // paper scheme, not just one — any hidden global state (hash-map
    // iteration order, uninitialized counters) shows up here.
    let cfg = SystemConfig::paper_default();
    let mix = Mix::by_id("MX1").expect("known mix");
    let len = RunLength {
        warmup_instructions: 3_000,
        instructions: 3_000,
        max_cycles: 1_000_000,
    };
    for scheme in [
        SchemeKind::Base,
        SchemeKind::BaseHit,
        SchemeKind::Mmd,
        SchemeKind::Camps,
        SchemeKind::CampsMod,
    ] {
        let a = run_mix(&cfg, mix, scheme, &len, 0xD0D0).unwrap();
        let b = run_mix(&cfg, mix, scheme, &len, 0xD0D0).unwrap();
        assert_eq!(a.ipc, b.ipc, "{scheme}: IPC diverged");
        assert_eq!(a.cycles, b.cycles, "{scheme}: cycle count diverged");
        assert_eq!(a.vaults, b.vaults, "{scheme}: vault stats diverged");
        assert_eq!(a.amat_mem.to_bits(), b.amat_mem.to_bits(), "{scheme}");
        assert_eq!(a.energy_nj.to_bits(), b.energy_nj.to_bits(), "{scheme}");
    }
}

// ---------------------------------------------------------------------
// Integrity layer: fault injection must surface as typed errors, not as
// silently-wrong numbers (and never as panics).
// ---------------------------------------------------------------------

#[test]
fn truncated_trace_file_is_a_typed_error() {
    use camps_sim::camps_cpu::trace_file::{record, FileTrace};
    use camps_sim::camps_types::FaultPlan;
    use camps_sim::camps_workloads::generator::SpecTrace;
    use camps_sim::camps_workloads::spec::profile_for;

    let dir = std::env::temp_dir().join("camps-fault-traces");
    std::fs::create_dir_all(&dir).expect("create trace dir");
    let path = dir.join("truncated.camps-trace");

    let mut gen = SpecTrace::new(profile_for("lbm").unwrap(), 0, 1 << 30, 7);
    record(&mut gen, 256).save(&path).expect("save trace");

    // Corrupt the image the way the fault plan would: chop the tail off.
    let bytes = std::fs::read(&path).expect("read back");
    let plan = FaultPlan {
        trace_truncate_to: 40,
        ..FaultPlan::default()
    };
    std::fs::write(&path, plan.mangle_trace_bytes(bytes)).expect("rewrite");

    let Err(err) = FileTrace::load(&path) else {
        panic!("a truncated trace must not load");
    };
    assert!(
        matches!(err, SimError::Trace(TraceError::TruncatedRecord { .. })),
        "got {err}"
    );
}

#[test]
fn stalled_vault_fault_trips_the_watchdog_end_to_end() {
    let mut cfg = SystemConfig::paper_default();
    cfg.faults.stall_vault = 3;
    cfg.faults.stall_vault_from = 1;
    cfg.integrity.watchdog_cycles = 20_000;
    let mix = Mix::by_id("HM1").expect("known mix");
    let Err(err) = run_mix(&cfg, mix, SchemeKind::CampsMod, &tiny(), 0xFEED) else {
        panic!("a dead vault must wedge the run");
    };
    let SimError::Watchdog(report) = err else {
        panic!("expected a watchdog trip, got {err}");
    };
    assert_eq!(report.stall_cycles, 20_000);
    // The diagnostic dump is renderable and names the stalled state.
    let dump = report.render();
    assert!(dump.contains("no forward progress"), "{dump}");
}

#[test]
fn duplicate_response_fault_is_caught_by_the_auditor() {
    let mut cfg = SystemConfig::paper_default();
    cfg.integrity.audit = true;
    cfg.faults.duplicate_response_every = 100;
    let mix = Mix::by_id("HM1").expect("known mix");
    let Err(err) = run_mix(&cfg, mix, SchemeKind::CampsMod, &tiny(), 0xFEED) else {
        panic!("duplicated responses must fail the run");
    };
    assert!(
        matches!(
            err,
            SimError::Integrity(IntegrityError::DuplicateCompletion { .. })
        ),
        "got {err}"
    );
}

#[test]
fn dropped_request_fault_is_detected() {
    // A dropped packet either wedges a core (watchdog) or — when the run
    // still completes — leaves the books unbalanced (lost requests at
    // drain). Either way the run must NOT return Ok with quietly-wrong
    // numbers.
    let mut cfg = SystemConfig::paper_default();
    cfg.integrity.audit = true;
    cfg.integrity.watchdog_cycles = 50_000;
    cfg.faults.drop_request_every = 50;
    let mix = Mix::by_id("HM1").expect("known mix");
    let Err(err) = run_mix(&cfg, mix, SchemeKind::CampsMod, &tiny(), 0xFEED) else {
        panic!("dropped packets must not yield a clean result");
    };
    assert!(
        matches!(
            err,
            SimError::Watchdog(_) | SimError::Integrity(IntegrityError::LostRequests { .. })
        ),
        "got {err}"
    );
}
