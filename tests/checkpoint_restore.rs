//! Checkpoint/restore and rollback-and-retry integration tests.
//!
//! The determinism contract (ISSUE acceptance): run to cycle K,
//! snapshot to disk, rebuild a fresh machine from the file, continue —
//! final stats must be bit-identical to the uninterrupted run, for every
//! PAPER scheme. Plus the recovery e2e: a fault-injected watchdog trip
//! completes via rollback when recovery is enabled, and propagates the
//! original typed error when it is not.

use camps::experiment::{resume_mix, run_mix_recoverable};
use camps::recovery::{read_snapshot, snapshot_to_string, RecoveryPolicy, SNAPSHOT_FORMAT_VERSION};
use camps::system::Engine;
use camps::System;
use camps_obs::ObsConfig;
use camps_sim::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("camps-checkpoint-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn tiny() -> RunLength {
    RunLength {
        warmup_instructions: 2_000,
        instructions: 6_000,
        max_cycles: 2_000_000,
    }
}

#[test]
fn snapshot_restore_is_deterministic_for_every_paper_scheme() {
    let cfg = SystemConfig::paper_default();
    let mix = Mix::by_id("HM1").expect("known mix");
    for scheme in SchemeKind::PAPER {
        let path = tmp(&format!("determinism-{scheme:?}.ckpt.json"));
        let policy = RecoveryPolicy {
            max_recoveries: 0,
            checkpoint_every: Some(8_000),
            checkpoint_path: Some(path.clone()),
        };
        let (full, report) =
            run_mix_recoverable(&cfg, mix, scheme, &tiny(), 0xFEED, &policy).expect("clean run");
        assert!(
            report.checkpoints_taken > 0,
            "{scheme:?}: run finished without leaving a checkpoint"
        );
        // Fresh machine, rebuilt from config + manifest, state overlaid
        // from the file, run to completion.
        let resumed = resume_mix(&cfg, &path).expect("resume");
        assert_eq!(full.ipc, resumed.ipc, "{scheme:?}: per-core IPC drifted");
        assert_eq!(
            full.cycles, resumed.cycles,
            "{scheme:?}: cycle count drifted"
        );
        assert_eq!(
            full.vaults, resumed.vaults,
            "{scheme:?}: vault stats drifted"
        );
        assert_eq!(full.amat_mem, resumed.amat_mem, "{scheme:?}: AMAT drifted");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn watchdog_trip_with_recovery_enabled_completes_via_rollback() {
    let mut cfg = SystemConfig::paper_default();
    cfg.faults.stall_vault = 3;
    cfg.faults.stall_vault_from = 1;
    cfg.integrity.watchdog_cycles = 20_000;
    let mix = Mix::by_id("HM1").expect("known mix");
    let policy = RecoveryPolicy {
        max_recoveries: 2,
        checkpoint_every: Some(10_000),
        checkpoint_path: None,
    };
    let (result, report) =
        run_mix_recoverable(&cfg, mix, SchemeKind::CampsMod, &tiny(), 0xFEED, &policy)
            .expect("recovery must complete the run");
    assert!(report.recovered(), "the stall must force a rollback");
    assert_eq!(report.events[0].attempt, 1);
    assert!(
        report.events[0].error.contains("no forward progress"),
        "report must carry the watchdog diagnosis: {:?}",
        report.events[0]
    );
    assert!(result.cycles > 0 && result.ipc.iter().all(|&i| i > 0.0));
}

#[test]
fn watchdog_trip_with_zero_budget_propagates_the_typed_error() {
    let mut cfg = SystemConfig::paper_default();
    cfg.faults.stall_vault = 3;
    cfg.faults.stall_vault_from = 1;
    cfg.integrity.watchdog_cycles = 20_000;
    let mix = Mix::by_id("HM1").expect("known mix");
    let policy = RecoveryPolicy {
        max_recoveries: 0,
        checkpoint_every: Some(10_000),
        checkpoint_path: None,
    };
    let err = run_mix_recoverable(&cfg, mix, SchemeKind::CampsMod, &tiny(), 0xFEED, &policy)
        .expect_err("no budget: the wedge must propagate");
    assert!(
        matches!(err, SimError::Watchdog(_)),
        "the original typed error must survive, got {err}"
    );
}

#[test]
fn snapshots_are_byte_identical_with_and_without_observability() {
    // Observability is runtime-only state: a machine with full tracing
    // and metrics sampling enabled must checkpoint to the exact bytes a
    // bare machine does, or restores would depend on how a run was
    // watched.
    let cfg = SystemConfig::paper_default();
    let mix = Mix::by_id("HM1").expect("known mix");
    let capacity = cfg
        .hmc
        .address_mapping()
        .expect("valid mapping")
        .capacity_bytes();
    let build = || {
        let traces = mix.build_traces(capacity, 0xFEED).expect("traces");
        let mut sys = System::new(&cfg, SchemeKind::CampsMod, traces).expect("system");
        // Polling: both machines advance one cycle per step, so they
        // reach the same checkpoint cycle regardless of the sampler's
        // extra wake source.
        sys.set_engine(Engine::Polling);
        sys
    };
    let mut bare = build();
    let mut observed = build();
    observed.enable_obs(&ObsConfig {
        trace_out: Some(tmp("identity.trace.json")),
        metrics_every: Some(100),
        metrics_out: Some(tmp("identity.metrics.jsonl")),
        ..ObsConfig::default()
    });
    let mut run_a = bare.run_begin(3_000, 2_000_000);
    let mut run_b = observed.run_begin(3_000, 2_000_000);
    while bare.now() < 500 {
        assert!(bare.run_step(&mut run_a).expect("step"), "ended too early");
    }
    while observed.now() < 500 {
        assert!(
            observed.run_step(&mut run_b).expect("step"),
            "ended too early"
        );
    }
    assert!(
        observed.obs().samples() > 0,
        "the observed machine must actually be sampling"
    );
    let a = snapshot_to_string(&bare, &run_a, "HM1", 0xFEED).expect("serialize bare");
    let b = snapshot_to_string(&observed, &run_b, "HM1", 0xFEED).expect("serialize observed");
    assert_eq!(a, b, "observability state leaked into the snapshot");
}

#[test]
fn rowguard_counters_ride_in_snapshots_and_round_trip_bit_identically() {
    use camps::recovery::{decode_snapshot, restore_run};
    use camps_sim::camps_types::snapshot::{field, Value};

    let cfg = fixture_cfg();
    let mix = Mix::by_id("HM1").expect("known mix");
    let capacity = cfg
        .hmc
        .address_mapping()
        .expect("valid mapping")
        .capacity_bytes();
    let traces = mix.build_traces(capacity, 0xFEED).expect("traces");
    let mut sys = System::new(&cfg, SchemeKind::Camps, traces).expect("system");
    let mut run = sys.run_begin(3_000, 2_000_000);
    // Stop mid refresh window (tREFI is ~23k cycles): activations have
    // happened, no refresh has cleared the trackers yet.
    while sys.now() < 600 {
        assert!(sys.run_step(&mut run).expect("step"), "ended too early");
    }
    let text = snapshot_to_string(&sys, &run, FIXTURE_MIX, 0xFEED).expect("serialize");
    let (manifest, state) = decode_snapshot(&text).expect("decode own snapshot");

    // The per-vault rowguard trackers must actually carry counters.
    let hmc = field(
        field(field(&state, "system").expect("system"), "mem").expect("mem"),
        "hmc",
    )
    .expect("hmc");
    let Value::Seq(vaults) = field(hmc, "vaults").expect("vaults") else {
        panic!("vault states must serialize as a sequence");
    };
    let tracking = vaults
        .iter()
        .filter(|v| {
            matches!(
                field(v, "rowguard").expect("every vault snapshots its rowguard"),
                Value::Seq(rows) if !rows.is_empty()
            )
        })
        .count();
    assert!(
        tracking > 0,
        "mid-window, at least one vault must have live activation counters"
    );

    // A fresh machine restored from the snapshot re-serializes to the
    // exact same bytes — rowguard counters included.
    let traces = mix.build_traces(capacity, 0xFEED).expect("traces");
    let mut restored = System::new(&cfg, SchemeKind::Camps, traces).expect("system");
    let mut restored_run = restored.run_begin(3_000, 2_000_000);
    restore_run(&mut restored, &mut restored_run, &manifest, &state).expect("restore");
    let again =
        snapshot_to_string(&restored, &restored_run, FIXTURE_MIX, 0xFEED).expect("serialize");
    assert_eq!(text, again, "rowguard state drifted through restore");
}

// ---------------------------------------------------------------------
// Committed-fixture compatibility: a snapshot written by an earlier
// build must keep restoring. CI runs `committed_fixture_restores…` on
// every push; regenerate with
// `cargo test --test checkpoint_restore -- --ignored` when the format
// version is bumped (and bump SNAPSHOT_FORMAT_VERSION when layout
// changes).
// ---------------------------------------------------------------------

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/checkpoint_v1.json")
}

/// The exact machine the fixture was generated from. Restores must
/// rebuild from an identical config or the manifest hash check fires.
/// Auditing is pinned on: debug builds audit unconditionally, so a
/// fixture captured with auditing off would replay its in-flight
/// requests as false `UnknownCompletion` violations there.
fn fixture_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.integrity.audit = true;
    cfg
}

const FIXTURE_MIX: &str = "HM1";
const FIXTURE_SEED: u64 = 0xF1C;

#[test]
#[ignore = "regenerates the committed fixture; run manually"]
fn generate_checkpoint_fixture() {
    let cfg = fixture_cfg();
    let mix = Mix::by_id(FIXTURE_MIX).expect("known mix");
    let capacity = cfg
        .hmc
        .address_mapping()
        .expect("valid mapping")
        .capacity_bytes();
    let traces = mix.build_traces(capacity, FIXTURE_SEED).expect("traces");
    let mut sys = System::new(&cfg, SchemeKind::Camps, traces).expect("system");
    // Checkpoint early: enough cycles for in-flight requests and partly
    // primed caches (the interesting restore cases) without committing
    // tens of thousands of fixture lines of fully warmed cache state.
    let mut run = sys.run_begin(3_000, 2_000_000);
    while sys.now() < 300 {
        assert!(sys.run_step(&mut run).expect("step"), "run ended too early");
    }
    // Committed compactly: `read_snapshot` is whitespace-insensitive and
    // the checksum is over the compact serialization, so this is still
    // format v1 — but a regeneration diffs as one changed line instead of
    // tens of thousands.
    let text = snapshot_to_string(&sys, &run, FIXTURE_MIX, FIXTURE_SEED).expect("serialize");
    let doc: camps_sim::camps_types::snapshot::Value =
        serde_json::from_str(&text).expect("valid snapshot JSON");
    let compact = serde_json::to_string(&doc).expect("compact render");
    std::fs::write(fixture_path(), compact + "\n").expect("write fixture");
}

#[test]
fn committed_fixture_restores_and_completes() {
    let path = fixture_path();
    let (manifest, _state) = read_snapshot(&path).expect("fixture must verify");
    assert_eq!(manifest.format, SNAPSHOT_FORMAT_VERSION);
    assert_eq!(manifest.mix_id, FIXTURE_MIX);
    assert_eq!(manifest.seed, FIXTURE_SEED);
    let result = resume_mix(&fixture_cfg(), &path).expect("fixture must resume");
    assert_eq!(result.mix_id, FIXTURE_MIX);
    assert_eq!(result.ipc.len(), 8);
    assert!(
        result.cycles > manifest.cycle,
        "the resumed run must continue past the checkpoint cycle"
    );
    assert!(result.ipc.iter().all(|&i| i > 0.0 && i <= 4.0));
}
