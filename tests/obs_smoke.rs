//! Observability smoke tests (ISSUE acceptance).
//!
//! A traced run must export a Perfetto-loadable Chrome trace-event JSON
//! carrying at least six distinct request-stage span types plus the
//! recovery/fault events; the metrics time-series must be well-formed;
//! and on a merge-free read workload the per-stage latency breakdown
//! must reconcile with the run's `amat_mem` within 1%.

use camps::experiment::{run_mix_observed, run_mix_recoverable_observed, run_mix_with_engine};
use camps::recovery::RecoveryPolicy;
use camps::system::Engine;
use camps_cpu::trace::{TraceOp, TraceSource, VecTrace};
use camps_obs::{ObsConfig, METRICS_SCHEMA_VERSION};
use camps_sim::prelude::*;
use camps_types::addr::PhysAddr;
use serde::value::{lookup, Value};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("camps-obs-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn tiny() -> RunLength {
    RunLength {
        warmup_instructions: 2_000,
        instructions: 6_000,
        max_cycles: 2_000_000,
    }
}

/// Event names in the trace, split by phase: async span begins (`b`),
/// instants (`i`), and complete slices (`X`).
struct TraceNames {
    spans: BTreeSet<String>,
    instants: BTreeSet<String>,
    slices: BTreeSet<String>,
}

fn read_trace_names(path: &PathBuf) -> TraceNames {
    let text = std::fs::read_to_string(path).expect("trace file exists");
    let doc: Value = serde_json::from_str(&text).expect("trace is valid JSON");
    let root = doc.as_map().expect("trace root is an object");
    let Some(Value::Seq(events)) = lookup(root, "traceEvents") else {
        panic!("trace has no traceEvents array");
    };
    let mut names = TraceNames {
        spans: BTreeSet::new(),
        instants: BTreeSet::new(),
        slices: BTreeSet::new(),
    };
    for ev in events {
        let ev = ev.as_map().expect("event is an object");
        let ph = lookup(ev, "ph").and_then(Value::as_str).unwrap_or("");
        let name = lookup(ev, "name").and_then(Value::as_str).unwrap_or("");
        let set = match ph {
            "b" => &mut names.spans,
            "i" => &mut names.instants,
            "X" => &mut names.slices,
            _ => continue,
        };
        set.insert(name.to_string());
    }
    names
}

#[test]
fn traced_recovery_run_exports_all_span_kinds() {
    // The checkpoint_restore fault scenario, now observed: vault 3
    // wedges, the watchdog trips, recovery rolls back and retries.
    let mut cfg = SystemConfig::paper_default();
    cfg.faults.stall_vault = 3;
    cfg.faults.stall_vault_from = 1;
    cfg.integrity.watchdog_cycles = 20_000;
    let mix = Mix::by_id("HM1").expect("known mix");
    let policy = RecoveryPolicy {
        max_recoveries: 2,
        checkpoint_every: Some(10_000),
        checkpoint_path: None,
    };
    let trace_path = tmp("recovery.trace.json");
    let obs_cfg = ObsConfig {
        trace_out: Some(trace_path.clone()),
        ..ObsConfig::default()
    };
    let (result, report) = run_mix_recoverable_observed(
        &cfg,
        mix,
        SchemeKind::CampsMod,
        &tiny(),
        0xFEED,
        &policy,
        &obs_cfg,
    )
    .expect("recovery must complete the run");
    assert!(report.recovered(), "the stall must force a rollback");

    let names = read_trace_names(&trace_path);
    assert!(
        names.spans.len() >= 6,
        "want ≥6 distinct stage span types, got {:?}",
        names.spans
    );
    for stage in [
        "cache_mshr",
        "host_queue",
        "req_link",
        "vault_queue",
        "resp_link",
    ] {
        assert!(names.spans.contains(stage), "missing span type {stage}");
    }
    assert!(
        names.spans.iter().any(|n| n.starts_with("bank_")),
        "no bank service span in {:?}",
        names.spans
    );
    for instant in ["checkpoint", "watchdog_trip", "fault_vault_stall"] {
        assert!(
            names.instants.contains(instant),
            "missing instant {instant} in {:?}",
            names.instants
        );
    }
    assert!(
        names.slices.contains("rollback"),
        "missing rollback slice in {:?}",
        names.slices
    );

    // The breakdown rides in the result of an observed run.
    let breakdown = result.stage_latency.expect("observed run has a breakdown");
    assert_eq!(
        breakdown.stages.len(),
        camps_obs::STAGE_COUNT,
        "fixed-width stage schema"
    );
    assert!(breakdown.demand_reads > 0);
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn metrics_series_is_well_formed_and_monotonic() {
    let mix = Mix::by_id("LM1").expect("known mix");
    let metrics_path = tmp("plain.metrics.jsonl");
    let obs_cfg = ObsConfig {
        metrics_every: Some(500),
        metrics_out: Some(metrics_path.clone()),
        ..ObsConfig::default()
    };
    let cfg = SystemConfig::paper_default();
    run_mix_observed(
        &cfg,
        mix,
        SchemeKind::Camps,
        &tiny(),
        7,
        Engine::Event,
        &obs_cfg,
    )
    .expect("observed run");

    let text = std::fs::read_to_string(&metrics_path).expect("metrics file exists");
    let mut rows = 0u64;
    let mut last_cycle: Option<u64> = None;
    let mut last_retired = 0u64;
    for line in text.lines() {
        let row: Value = serde_json::from_str(line).expect("row is valid JSON");
        let row = row.as_map().expect("row is an object");
        assert_eq!(
            lookup(row, "schema"),
            Some(&Value::U64(u64::from(METRICS_SCHEMA_VERSION))),
            "schema version mismatch"
        );
        let Some(&Value::U64(cycle)) = lookup(row, "cycle") else {
            panic!("row has no cycle: {line}");
        };
        if let Some(prev) = last_cycle {
            assert!(
                cycle > prev,
                "cycles must strictly increase ({prev} → {cycle})"
            );
        }
        last_cycle = Some(cycle);
        // Counters are cumulative: retired never decreases.
        let Some(&Value::U64(retired)) = lookup(row, "retired") else {
            panic!("row has no retired: {line}");
        };
        assert!(retired >= last_retired, "retired went backwards");
        last_retired = retired;
        rows += 1;
    }
    assert!(rows > 10, "expected a real series, got {rows} rows");
    assert!(last_retired > 0, "the series never saw progress");
    std::fs::remove_file(&metrics_path).ok();
}

#[test]
fn stage_breakdown_reconciles_with_amat_on_merge_free_reads() {
    // One narrow core streaming loads with a row-sized stride: every
    // access is a distinct block (no MSHR merging), every load is a
    // demand read, so the telescoped stage sums must reproduce the
    // `amat_mem` accounting exactly. No warmup: the histograms and the
    // AMAT accumulator must see the same set of reads.
    let mut cfg = SystemConfig::paper_default();
    cfg.cpu.cores = 1;
    let ops: Vec<TraceOp> = (0..4096u64)
        .map(|i| TraceOp::load(2, PhysAddr(i * (1 << 13))))
        .collect();
    let traces: Vec<Box<dyn TraceSource>> =
        vec![Box::new(VecTrace::new("stream".to_string(), ops))];
    let mut sys = System::new(&cfg, SchemeKind::Camps, traces).expect("system");
    sys.enable_obs(&ObsConfig::default());
    let result = sys.run(8_000, 2_000_000, "reconcile").expect("run");

    let breakdown = result.stage_latency.expect("observed run has a breakdown");
    assert!(breakdown.demand_reads > 100, "not enough traced reads");
    let stage_sum: f64 = breakdown.stages.iter().map(|s| s.mean_cycles).sum();
    let relative = |a: f64, b: f64| (a - b).abs() / b.max(1e-9);
    assert!(
        relative(stage_sum, breakdown.mean_total) < 1e-9,
        "stage means must telescope: sum {stage_sum} vs total {}",
        breakdown.mean_total
    );
    assert!(
        relative(breakdown.mean_total, result.amat_mem) < 0.01,
        "breakdown {:.3} does not reconcile with amat_mem {:.3}",
        breakdown.mean_total,
        result.amat_mem
    );
}

/// The self-profiler must observe without perturbing: a profiled run's
/// `RunResult` — minus the host-side blocks only an observed run can
/// carry — is byte-identical to the plain run's. When the hooks are
/// compiled in, the span tree must telescope (exclusive nanoseconds sum
/// exactly to the measured root wall time), the expected component
/// paths must appear, the event engine must report per-wake-source
/// dispatch accounting, and `--profile-out` must yield parseable
/// folded-stack lines. When built `--no-default-features` every hook is
/// a stub and the same run yields no profile at all — the identity
/// check holds in both modes.
#[test]
fn profiler_attributes_wall_time_without_perturbing_the_run() {
    let cfg = SystemConfig::paper_default();
    let mix = Mix::by_id("HM1").expect("known mix");
    let plain = run_mix_with_engine(&cfg, mix, SchemeKind::Camps, &tiny(), 21, Engine::Event)
        .expect("plain run");
    assert!(
        plain.profile.is_none(),
        "profile must be absent unless requested"
    );

    let folded_path = tmp("hm1.folded.txt");
    let obs_cfg = ObsConfig {
        profile: true,
        profile_out: Some(folded_path.clone()),
        ..ObsConfig::default()
    };
    let mut profiled = run_mix_observed(
        &cfg,
        mix,
        SchemeKind::Camps,
        &tiny(),
        21,
        Engine::Event,
        &obs_cfg,
    )
    .expect("profiled run");

    // Strip the host-timing payloads (wall-clock, so nondeterministic
    // by design) and demand bit-identity on everything simulated.
    let summary = profiled.profile.take();
    profiled.stage_latency = None;
    assert_eq!(
        serde_json::to_string(&plain).expect("plain serializes"),
        serde_json::to_string(&profiled).expect("profiled serializes"),
        "profiling perturbed the simulation"
    );

    let folded = std::fs::read_to_string(&folded_path).expect("profile-out file exists");
    std::fs::remove_file(&folded_path).ok();

    if !camps_obs::TraceHandle::compiled() {
        // Stub build: hooks are no-ops, the file is written but empty.
        assert!(summary.is_none(), "stub build must not produce a profile");
        return;
    }

    let summary = summary.expect("profiled run carries a summary");
    assert!(summary.total_ns > 0, "no wall time measured");
    assert_eq!(
        summary.attributed_ns(),
        summary.total_ns,
        "span tree must telescope: every nanosecond under run_loop \
         lands in exactly one node"
    );
    let paths: BTreeSet<&str> = summary.nodes.iter().map(|n| n.path.as_str()).collect();
    for path in [
        "run_loop",
        "run_loop;wake_scan",
        "run_loop;run_step;core_retire;cache_lookup",
        "run_loop;run_step;mem_tick;hmc_tick;vault_tick;issue_scan",
        "run_loop;run_step;mem_tick;cache_fill",
    ] {
        assert!(
            paths.contains(path),
            "missing span path {path} in {paths:?}"
        );
    }

    // Dispatch accounting: the event engine attributes every jump to a
    // wake source, and outcomes never outnumber the wakes they judge.
    assert!(
        !summary.wake_sources.is_empty(),
        "event engine must report wake sources"
    );
    let total_wakes: u64 = summary.wake_sources.iter().map(|w| w.wakes).sum();
    assert!(total_wakes > 0, "no wakes recorded");
    for w in &summary.wake_sources {
        assert!(
            w.productive + w.spurious <= w.wakes,
            "{}: outcomes ({} + {}) exceed wakes ({})",
            w.source,
            w.productive,
            w.spurious,
            w.wakes
        );
    }

    // The folded export is real flamegraph input: `path ns` per line,
    // every stack rooted at run_loop.
    assert!(!folded.is_empty(), "folded export is empty");
    for line in folded.lines() {
        let (path, ns) = line.rsplit_once(' ').expect("line is `path ns`");
        assert!(path.starts_with("run_loop"), "stack not rooted: {line}");
        ns.parse::<u64>().expect("trailing field is nanoseconds");
    }
}

/// A disabled profiler is inert regardless of build mode: no clock
/// reads observable through `stamp`, no summary, no accumulated time.
/// This is the contract that keeps the polling hot loop free and
/// `RunResult` stable when `--profile` is not passed.
#[test]
fn disabled_profiler_is_inert() {
    let prof = camps_obs::Profiler::off();
    assert!(!prof.is_enabled());
    assert_eq!(
        prof.stamp(),
        0,
        "a disabled profiler must not read the clock"
    );
    assert_eq!(prof.host_ns(), 0);
    assert_eq!(prof.spurious_total(), 0);
    assert!(prof.summary().is_none());
}
