//! Polling/event engine equivalence (ISSUE 4 acceptance).
//!
//! The event engine must be an *engine*, not a model: for every paper
//! scheme it must produce bit-identical results to the per-cycle polling
//! reference, and a snapshot taken under either engine must restore and
//! continue under the other. Results are compared as serialized
//! [`camps::metrics::RunResult`] values, which covers IPC, cycle counts,
//! every vault/core counter, AMAT accumulators, and the energy model.

use camps::experiment::{run_mix_with_engine, RunLength};
use camps::system::Engine;
use camps::System;
use camps_prefetch::SchemeKind;
use camps_types::config::SystemConfig;
use camps_types::snapshot::Snapshot;
use camps_workloads::Mix;

fn mini() -> RunLength {
    RunLength {
        warmup_instructions: 2_000,
        instructions: 4_000,
        max_cycles: 2_000_000,
    }
}

fn canonical(r: &camps::metrics::RunResult) -> String {
    serde_json::to_string(r).expect("RunResult serializes")
}

#[test]
fn every_paper_scheme_is_bit_identical_across_engines() {
    let cfg = SystemConfig::paper_default();
    for mix_id in ["HM1", "LM1"] {
        let mix = Mix::by_id(mix_id).unwrap();
        for scheme in SchemeKind::PAPER {
            let polled =
                run_mix_with_engine(&cfg, mix, scheme, &mini(), 11, Engine::Polling).unwrap();
            let evented =
                run_mix_with_engine(&cfg, mix, scheme, &mini(), 11, Engine::Event).unwrap();
            assert_eq!(
                canonical(&polled),
                canonical(&evented),
                "{mix_id}/{scheme:?}: engines diverged"
            );
        }
    }
}

#[test]
fn snapshots_cross_engines_in_both_directions() {
    let cfg = SystemConfig::paper_default();
    let capacity = cfg.hmc.address_mapping().unwrap().capacity_bytes();
    let mix = Mix::by_id("HM1").unwrap();
    for (first, second) in [
        (Engine::Event, Engine::Polling),
        (Engine::Polling, Engine::Event),
    ] {
        let mut a = System::new(
            &cfg,
            SchemeKind::Camps,
            mix.build_traces(capacity, 3).unwrap(),
        )
        .unwrap();
        a.set_engine(first);
        let mut st_a = a.run_begin(6_000, 1_000_000);
        for _ in 0..1_500 {
            assert!(a.run_step(&mut st_a).unwrap(), "{first:?}: ended too early");
        }
        let sys_state = a.save_state();
        let run_state = st_a.save_state();
        // The snapshot is engine-neutral: overlay it on a machine driven
        // by the *other* engine and continue both to completion.
        let mut b = System::new(
            &cfg,
            SchemeKind::Camps,
            mix.build_traces(capacity, 3).unwrap(),
        )
        .unwrap();
        b.set_engine(second);
        let mut st_b = b.run_begin(6_000, 1_000_000);
        b.restore_state(&sys_state).unwrap();
        st_b.restore_state(&run_state).unwrap();
        while a.run_step(&mut st_a).unwrap() {}
        while b.run_step(&mut st_b).unwrap() {}
        let ra = a.run_finish(&st_a, "cross").unwrap();
        let rb = b.run_finish(&st_b, "cross").unwrap();
        assert_eq!(
            canonical(&ra),
            canonical(&rb),
            "{first:?} snapshot did not continue identically under {second:?}"
        );
    }
}
