//! `camps-sim` — umbrella crate for the CAMPS reproduction.
//!
//! Reproduces *CAMPS: Conflict-Aware Memory-Side Prefetching Scheme for
//! Hybrid Memory Cube* (Rafique & Zhu, ICPP 2018) as a full-system
//! simulator: trace-driven cores, a three-level cache hierarchy, and a
//! cycle-level HMC model (serial links, crossbar, 32 vault controllers
//! with FR-FCFS scheduling and per-vault prefetch engines).
//!
//! This crate re-exports the workspace's public API; depend on it to get
//! everything, or on the individual `camps-*` crates for narrower
//! dependencies. Start with [`camps::experiment::run_mix`] and the
//! `examples/` directory.
//!
//! ```no_run
//! use camps_sim::prelude::*;
//!
//! fn main() -> Result<(), SimError> {
//!     let cfg = SystemConfig::paper_default();
//!     let mix = Mix::by_id("HM1").unwrap();
//!     let result = run_mix(&cfg, mix, SchemeKind::CampsMod, &RunLength::quick(), 42)?;
//!     println!("geomean IPC: {:.3}", result.geomean_ipc());
//!     Ok(())
//! }
//! ```

#![warn(missing_docs)]

pub use camps;
pub use camps_cache;
pub use camps_cpu;
pub use camps_dram;
pub use camps_link;
pub use camps_obs;
pub use camps_prefetch;
pub use camps_stats;
pub use camps_types;
pub use camps_vault;
pub use camps_workloads;

/// The names most programs need, in one import.
pub mod prelude {
    pub use camps::experiment::{run_matrix, run_mix, run_replicated, Replicated, RunLength};
    pub use camps::metrics::{average_speedup, speedup_table, RunResult};
    pub use camps::system::System;
    pub use camps_prefetch::SchemeKind;
    pub use camps_types::config::SystemConfig;
    pub use camps_types::{IntegrityError, SimError, TraceError};
    pub use camps_workloads::{Mix, MixClass, ALL_MIXES};
}
