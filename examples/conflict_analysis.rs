//! Row-buffer conflict anatomy: drives a deliberately conflict-prone
//! two-core ping-pong through one vault and shows, step by step, how the
//! CAMPS Conflict Table turns repeat offenders into prefetch-buffer hits.
//!
//! This is the §3.1 mechanism in isolation — the motivating example of
//! the paper, runnable.
//!
//! ```sh
//! cargo run --release --example conflict_analysis
//! ```

use camps_sim::camps_obs::Profiler;
use camps_sim::camps_prefetch::SchemeKind;
use camps_sim::camps_types::addr::DecodedAddr;
use camps_sim::camps_types::config::SystemConfig;
use camps_sim::camps_types::request::{AccessKind, CoreId, MemRequest, RequestId};
use camps_sim::camps_vault::VaultController;

/// Sends one read for (bank, row, col) through the vault and reports how
/// it was served.
fn one_read(
    v: &mut VaultController,
    cfg: &SystemConfig,
    id: u64,
    bank: u16,
    row: u32,
    col: u16,
    now: &mut u64,
) -> &'static str {
    let m = cfg.hmc.address_mapping().unwrap();
    let d = DecodedAddr {
        vault: 0,
        bank,
        row,
        col,
        offset: 0,
    };
    let req = MemRequest {
        id: RequestId(id),
        addr: m.encode(&d),
        kind: AccessKind::Read,
        core: CoreId(0),
        created_at: *now,
    };
    assert!(v.try_enqueue(req, d, *now));
    let mut out = Vec::new();
    while out.is_empty() {
        *now += 1;
        v.tick(*now, &mut out, &mut Profiler::off());
    }
    // Let background work (row fetch + precharge) settle.
    for _ in 0..2_000 {
        *now += 1;
        v.tick(*now, &mut out, &mut Profiler::off());
    }
    use camps_sim::camps_types::request::ServiceSource as S;
    match out[0].source {
        S::PrefetchBuffer => "prefetch buffer (22-cycle hit!)",
        S::RowBufferHit => "row-buffer hit",
        S::RowBufferMiss => "row miss (activate)",
        S::RowBufferConflict => "row-buffer CONFLICT (precharge + activate)",
    }
}

fn main() {
    let mut cfg = SystemConfig::paper_default();
    cfg.hmc.vaults = 4; // decode convenience; we drive vault 0 directly
    let mut now = 0u64;

    for scheme in [SchemeKind::Nopf, SchemeKind::Camps] {
        println!("==== scheme: {} ====", scheme.name());
        let mut v = VaultController::new(0, &cfg, scheme).expect("valid config");
        // Two "threads" ping-pong rows 100 and 200 of bank 0 — the exact
        // pathology the Conflict Table profiles. With the default CT
        // evidence of 3, a row is fetched on its second *return* (third
        // activation), once it has proven it keeps bouncing.
        let pattern = [100u32, 200, 100, 200, 100, 200, 100, 200];
        for (i, &row) in pattern.iter().enumerate() {
            let served = one_read(&mut v, &cfg, i as u64, 0, row, (i % 16) as u16, &mut now);
            println!("  access {} → row {row}: {served}", i + 1);
        }
        let s = v.stats();
        println!(
            "  totals: {} conflicts, {} prefetches, {} buffer hits\n",
            s.row_conflicts, s.prefetches, s.buffer_hits
        );
    }
    println!("Under NOPF every alternation pays precharge+activate forever.");
    println!("Under CAMPS a bouncing row accumulates evidence in the Conflict");
    println!("Table; once it has proven conflict-prone it is streamed to the");
    println!("prefetch buffer and every later access is a 22-cycle buffer hit");
    println!("— the conflicts stop.");
}
