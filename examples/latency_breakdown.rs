//! Per-stage AMAT decomposition across the paper's five schemes.
//!
//! Runs a chosen Table II mix under each Figure 5 scheme with the
//! request-lifecycle tracer enabled and prints where a demand read's
//! memory latency goes: MSHR stalls, host queue, request link, vault
//! queue, bank service (hit / miss / conflict / prefetch buffer), and
//! the response link. The per-stage means telescope, so each column sums
//! to the scheme's `amat_mem` — a Figure 8-style view with the paper's
//! queue/link terms split out.
//!
//! ```sh
//! cargo run --release --example latency_breakdown [MIX]
//! ```

use camps::experiment::run_mix_observed;
use camps::system::Engine;
use camps_obs::{ObsConfig, TraceHandle};
use camps_sim::prelude::*;
use rayon::prelude::*;

fn main() {
    if !TraceHandle::compiled() {
        eprintln!("built without the `obs` feature; nothing to decompose");
        std::process::exit(1);
    }
    let mix_id = std::env::args().nth(1).unwrap_or_else(|| "HM1".into());
    let mix = Mix::by_id(&mix_id).unwrap_or_else(|| {
        eprintln!("unknown mix `{mix_id}`");
        std::process::exit(1);
    });
    let cfg = SystemConfig::paper_default();
    // A breakdown is collected whenever a handle is installed; no trace
    // file or metrics series is needed for this table.
    let obs_cfg = ObsConfig::default();

    println!(
        "decomposing {} under {} schemes …",
        mix.id,
        SchemeKind::PAPER.len()
    );
    let results: Vec<RunResult> = SchemeKind::PAPER
        .par_iter()
        .map(|&s| {
            run_mix_observed(
                &cfg,
                mix,
                s,
                &RunLength::quick(),
                7,
                Engine::Event,
                &obs_cfg,
            )
            .expect("quick run")
        })
        .collect();

    let stages: Vec<String> = results[0]
        .stage_latency
        .as_ref()
        .expect("observed runs carry a breakdown")
        .stages
        .iter()
        .map(|s| s.stage.clone())
        .collect();

    print!("{:>14}", "stage");
    for r in &results {
        print!("  {:>10}", r.scheme.name());
    }
    println!();
    for stage in &stages {
        print!("{stage:>14}");
        for r in &results {
            let b = r.stage_latency.as_ref().expect("breakdown");
            print!("  {:>10.1}", b.mean_of(stage));
        }
        println!();
    }
    print!("{:>14}", "= total");
    for r in &results {
        let b = r.stage_latency.as_ref().expect("breakdown");
        print!("  {:>10.1}", b.mean_total);
    }
    println!();
    print!("{:>14}", "amat_mem");
    for r in &results {
        print!("  {:>10.1}", r.amat_mem);
    }
    println!();
    println!(
        "\nStage means telescope to the traced total exactly; `amat_mem` \
         (Figure 8's metric) also counts store fills and MSHR-merged \
         waiters, so it sits near — not on — the total. CAMPS/CAMPS-MOD \
         shift cycles out of bank_conflict and into pfbuffer_hit — the \
         paper's §4 explanation for their AMAT win."
    );
}
