//! Scheme shoot-out on one workload: runs all six schemes (NOPF + the
//! paper's five) on a chosen Table II mix in parallel and prints a
//! Figure 5-style comparison normalized to BASE.
//!
//! ```sh
//! cargo run --release --example scheme_comparison [MIX]
//! ```

use camps_sim::prelude::*;
use rayon::prelude::*;

fn main() {
    let mix_id = std::env::args().nth(1).unwrap_or_else(|| "MX1".into());
    let mix = Mix::by_id(&mix_id).unwrap_or_else(|| {
        eprintln!("unknown mix `{mix_id}`");
        std::process::exit(1);
    });
    let cfg = SystemConfig::paper_default();
    let schemes = [
        SchemeKind::Nopf,
        SchemeKind::Base,
        SchemeKind::BaseHit,
        SchemeKind::Mmd,
        SchemeKind::Camps,
        SchemeKind::CampsMod,
    ];

    println!("running {} under {} schemes …", mix.id, schemes.len());
    let results: Vec<RunResult> = schemes
        .par_iter()
        .map(|&s| run_mix(&cfg, mix, s, &RunLength::quick(), 7).expect("quick run"))
        .collect();

    let base_perf = results
        .iter()
        .find(|r| r.scheme == SchemeKind::Base)
        .expect("BASE ran")
        .geomean_ipc();

    println!(
        "\n{:>10}  {:>8}  {:>8}  {:>10}  {:>9}  {:>9}  {:>9}",
        "scheme", "IPC", "vs BASE", "conflicts", "accuracy", "AMAT", "energy"
    );
    for r in &results {
        println!(
            "{:>10}  {:>8.3}  {:>7.1}%  {:>9.1}%  {:>8.1}%  {:>6.0} cy  {:>6.2} mJ",
            r.scheme.name(),
            r.geomean_ipc(),
            (r.geomean_ipc() / base_perf - 1.0) * 100.0,
            r.conflict_rate() * 100.0,
            r.prefetch_accuracy() * 100.0,
            r.amat_mem,
            r.energy_nj / 1e6,
        );
    }
    println!(
        "\nPaper's qualitative expectations: CAMPS-MOD tops BASE by ~18% on \
         average, reduces conflicts vs MMD/BASE-HIT, and BASE shows the \
         lowest prefetch accuracy (Figures 5-7)."
    );
}
