//! Trace capture and replay: record a workload's instruction stream to a
//! binary `.camps-trace` file, then replay exactly the same stream under
//! different prefetching schemes — the workflow for evaluating CAMPS on
//! traces of real programs (convert your Pin/DynamoRIO log into the
//! format documented in `camps_cpu::trace_file`).
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use camps_sim::camps::system::System;
use camps_sim::camps_cpu::trace::TraceSource;
use camps_sim::camps_cpu::trace_file::{record, FileTrace};
use camps_sim::camps_workloads::generator::SpecTrace;
use camps_sim::camps_workloads::spec::profile_for;
use camps_sim::prelude::*;

fn main() {
    let cfg = SystemConfig::paper_default();
    let capacity = cfg.hmc.address_mapping().unwrap().capacity_bytes();
    let slice = capacity / u64::from(cfg.cpu.cores);
    let dir = std::env::temp_dir().join("camps-traces");
    std::fs::create_dir_all(&dir).expect("create trace dir");

    // 1. Capture: record 40k ops of each core's generator to disk.
    println!("recording 8 × 40k-op traces to {} …", dir.display());
    let mix = Mix::by_id("MX1").unwrap();
    for (core, bench) in mix.benchmarks.iter().enumerate() {
        let mut gen = SpecTrace::new(
            profile_for(bench).expect("Table II benchmark"),
            core as u64 * slice,
            slice,
            77 + core as u64,
        );
        let writer = record(&mut gen, 40_000);
        writer
            .save(dir.join(format!("core{core}-{bench}.camps-trace")))
            .expect("save trace");
    }

    // 2. Replay: identical streams under two schemes — any difference is
    // the scheme, nothing else.
    for scheme in [SchemeKind::Nopf, SchemeKind::CampsMod] {
        let traces: Vec<Box<dyn TraceSource>> = (0..8usize)
            .map(|core| {
                let bench = mix.benchmarks[core];
                let t = FileTrace::load(dir.join(format!("core{core}-{bench}.camps-trace")))
                    .expect("load trace");
                Box::new(t) as Box<dyn TraceSource>
            })
            .collect();
        let mut sys = System::new(&cfg, scheme, traces).expect("paper-default config");
        sys.warmup(30_000);
        let r = sys.run(30_000, 10_000_000, "replay").expect("replay run");
        println!(
            "{:>10}: geomean IPC {:.3}, buffer hits {}, conflicts {:.1}%",
            scheme.name(),
            r.geomean_ipc(),
            r.vaults.buffer_hits,
            r.conflict_rate() * 100.0,
        );
    }
    println!("\nIdentical replayed streams — the IPC delta is pure scheme effect.");
}
