//! Trace capture and replay: record a workload's instruction stream to a
//! binary `.camps-trace` file, then replay exactly the same stream under
//! different prefetching schemes — the workflow for evaluating CAMPS on
//! traces of real programs (convert your Pin/DynamoRIO log into the
//! format documented in `camps_cpu::trace_file`).
//!
//! Also demonstrates checkpoint/resume (the library form of the CLI's
//! `--checkpoint-every` / `--resume`): replay half the trace, snapshot
//! to disk, restore into a fresh machine, finish — and check the final
//! stats are bit-identical to an uninterrupted replay.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use camps_sim::camps::recovery::{read_snapshot, restore_run, write_snapshot};
use camps_sim::camps::system::System;
use camps_sim::camps_cpu::trace::TraceSource;
use camps_sim::camps_cpu::trace_file::{record, FileTrace};
use camps_sim::camps_workloads::generator::SpecTrace;
use camps_sim::camps_workloads::spec::profile_for;
use camps_sim::prelude::*;

fn main() {
    let cfg = SystemConfig::paper_default();
    let capacity = cfg.hmc.address_mapping().unwrap().capacity_bytes();
    let slice = capacity / u64::from(cfg.cpu.cores);
    let dir = std::env::temp_dir().join("camps-traces");
    std::fs::create_dir_all(&dir).expect("create trace dir");

    // 1. Capture: record 40k ops of each core's generator to disk.
    println!("recording 8 × 40k-op traces to {} …", dir.display());
    let mix = Mix::by_id("MX1").unwrap();
    for (core, bench) in mix.benchmarks.iter().enumerate() {
        let mut gen = SpecTrace::new(
            profile_for(bench).expect("Table II benchmark"),
            core as u64 * slice,
            slice,
            77 + core as u64,
        );
        let writer = record(&mut gen, 40_000);
        writer
            .save(dir.join(format!("core{core}-{bench}.camps-trace")))
            .expect("save trace");
    }

    // 2. Replay: identical streams under two schemes — any difference is
    // the scheme, nothing else.
    let load_traces = |dir: &std::path::Path| -> Vec<Box<dyn TraceSource>> {
        (0..8usize)
            .map(|core| {
                let bench = mix.benchmarks[core];
                let t = FileTrace::load(dir.join(format!("core{core}-{bench}.camps-trace")))
                    .expect("load trace");
                Box::new(t) as Box<dyn TraceSource>
            })
            .collect()
    };
    let mut campsmod_result = None;
    for scheme in [SchemeKind::Nopf, SchemeKind::CampsMod] {
        let mut sys = System::new(&cfg, scheme, load_traces(&dir)).expect("paper-default config");
        sys.warmup(30_000);
        let r = sys.run(30_000, 10_000_000, "replay").expect("replay run");
        println!(
            "{:>10}: geomean IPC {:.3}, buffer hits {}, conflicts {:.1}%",
            scheme.name(),
            r.geomean_ipc(),
            r.vaults.buffer_hits,
            r.conflict_rate() * 100.0,
        );
        if scheme == SchemeKind::CampsMod {
            campsmod_result = Some(r);
        }
    }
    println!("\nIdentical replayed streams — the IPC delta is pure scheme effect.");

    // 3. Checkpoint/resume: replay roughly half of the CAMPS-MOD run,
    // snapshot to disk, restore into a brand-new machine (what the CLI's
    // `camps run --resume <FILE>` does in a fresh process), and finish.
    let full = campsmod_result.expect("CAMPS-MOD replay ran above");
    let mut sys = System::new(&cfg, SchemeKind::CampsMod, load_traces(&dir)).expect("config");
    sys.warmup(30_000);
    let mut run = sys.run_begin(30_000, 10_000_000);
    let start = sys.now();
    while sys.now() - start < full.cycles / 2 {
        assert!(
            sys.run_step(&mut run).expect("replay step"),
            "half-way point must land inside the run"
        );
    }
    let ckpt = dir.join("replay.ckpt.json");
    write_snapshot(&ckpt, &sys, &run, "replay", 0).expect("write checkpoint");
    println!(
        "checkpointed the half-done replay at cycle {} → {}",
        sys.now(),
        ckpt.display()
    );
    drop(sys); // the interrupted machine is gone — only the file survives

    let (manifest, state) = read_snapshot(&ckpt).expect("read checkpoint");
    let mut resumed = System::new(&cfg, SchemeKind::CampsMod, load_traces(&dir)).expect("config");
    let mut resumed_run = resumed.run_begin(0, 0);
    restore_run(&mut resumed, &mut resumed_run, &manifest, &state).expect("restore");
    while resumed.run_step(&mut resumed_run).expect("resumed step") {}
    let r = resumed.run_finish(&resumed_run, "replay").expect("finish");

    assert_eq!(full.ipc, r.ipc, "per-core IPC must match the full replay");
    assert_eq!(full.cycles, r.cycles, "cycle count must match");
    assert_eq!(full.vaults, r.vaults, "vault stats must match");
    println!(
        "resumed from cycle {}: final stats bit-identical to the uninterrupted replay \
         (geomean IPC {:.3}, {} cycles)",
        manifest.cycle,
        r.geomean_ipc(),
        r.cycles
    );
}
