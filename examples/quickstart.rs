//! Quickstart: simulate one Table II workload under CAMPS-MOD and print
//! the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart [MIX] [SCHEME]
//! # e.g.
//! cargo run --release --example quickstart HM1 campsmod
//! ```

use camps_sim::prelude::*;

fn parse_scheme(s: &str) -> SchemeKind {
    match s.to_ascii_lowercase().as_str() {
        "nopf" => SchemeKind::Nopf,
        "base" => SchemeKind::Base,
        "basehit" | "base-hit" => SchemeKind::BaseHit,
        "mmd" => SchemeKind::Mmd,
        "camps" => SchemeKind::Camps,
        _ => SchemeKind::CampsMod,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mix_id = args.first().map_or("HM1", String::as_str);
    let scheme = parse_scheme(args.get(1).map_or("campsmod", String::as_str));

    // Table I system: 8 cores @ 3 GHz, 32-vault HMC, 16 KB prefetch
    // buffer per vault.
    let cfg = SystemConfig::paper_default();
    let mix = Mix::by_id(mix_id).unwrap_or_else(|| {
        eprintln!("unknown mix `{mix_id}`; available: HM1-4, LM1-4, MX1-4");
        std::process::exit(1);
    });

    println!("simulating {mix_id} {:?} under {scheme} …", mix.benchmarks);
    let result = run_mix(&cfg, mix, scheme, &RunLength::quick(), 42).unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    });

    println!("\n== {} under {} ==", result.mix_id, result.scheme);
    println!("cycles simulated      : {}", result.cycles);
    println!("geomean IPC           : {:.3}", result.geomean_ipc());
    for (name, ipc) in result.core_names.iter().zip(&result.ipc) {
        println!("  {name:>8}: IPC {ipc:.3}");
    }
    println!(
        "row-buffer conflicts  : {:.1}%",
        result.conflict_rate() * 100.0
    );
    println!("prefetches issued     : {}", result.vaults.prefetches);
    println!(
        "prefetch accuracy     : {:.1}%",
        result.prefetch_accuracy() * 100.0
    );
    println!("buffer-served demand  : {}", result.vaults.buffer_hits);
    println!("memory AMAT           : {:.1} cycles", result.amat_mem);
    println!("HMC energy            : {:.3} mJ", result.energy_nj / 1e6);
}
