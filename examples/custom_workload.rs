//! Bring your own workload: define a custom benchmark profile (or a fully
//! custom trace) and run it through the simulator — the path a downstream
//! user takes to evaluate CAMPS on their own access patterns.
//!
//! Demonstrates both extension points:
//! 1. a custom [`BenchProfile`] driving the built-in synthetic generator;
//! 2. a hand-written [`TraceSource`] (here: a strided matrix-column walk).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use camps_sim::camps::system::System;
use camps_sim::camps_cpu::trace::{TraceOp, TraceSource};
use camps_sim::camps_types::addr::PhysAddr;
use camps_sim::camps_workloads::generator::SpecTrace;
use camps_sim::camps_workloads::profile::{BenchProfile, MemClass, PatternWeights};
use camps_sim::prelude::*;

/// Extension point 2: a custom trace — column-major walk over a row-major
/// matrix, the classic row-buffer-hostile pattern.
struct ColumnWalk {
    addr: u64,
    base: u64,
    row_bytes: u64,
    rows: u64,
    col: u64,
}

impl ColumnWalk {
    fn new(base: u64) -> Self {
        Self {
            addr: base,
            base,
            row_bytes: 64 * 1024,
            rows: 512,
            col: 0,
        }
    }
}

impl TraceSource for ColumnWalk {
    fn next_op(&mut self) -> TraceOp {
        let op = TraceOp::load(3, PhysAddr(self.addr));
        // Next element one matrix-row down; wrap to the next column at the
        // bottom.
        self.addr += self.row_bytes;
        if self.addr >= self.base + self.rows * self.row_bytes {
            self.col = (self.col + 8) % self.row_bytes;
            self.addr = self.base + self.col;
        }
        op
    }

    fn name(&self) -> &str {
        "column-walk"
    }
}

fn main() {
    let cfg = SystemConfig::paper_default();
    let capacity = cfg.hmc.address_mapping().unwrap().capacity_bytes();
    let slice = capacity / u64::from(cfg.cpu.cores);

    // Extension point 1: a custom profile for the synthetic generator —
    // a "graph-analytics" style benchmark: pointer-heavy with a drifting
    // frontier region.
    let graphish = BenchProfile {
        name: "graphish",
        mem_fraction: 0.32,
        store_fraction: 0.2,
        weights: PatternWeights {
            stream: 0.05,
            stride: 0.0,
            random: 0.06,
            region: 0.18,
            reuse: 0.71,
        },
        streams: 1,
        stride_blocks: 1,
        working_set: 128 << 20,
        hot_set: 64 << 10,
        region_bytes: 1 << 20,
        region_dwell: 16_000,
        stream_burst: 128,
        class: MemClass::High,
    };

    // Four cores run the custom profile, four run the hostile column walk.
    let build = |scheme: SchemeKind| {
        let traces: Vec<Box<dyn TraceSource>> = (0..cfg.cpu.cores as u64)
            .map(|core| {
                let base = core * slice;
                if core % 2 == 0 {
                    Box::new(SpecTrace::new(graphish, base, slice, 1000 + core))
                        as Box<dyn TraceSource>
                } else {
                    Box::new(ColumnWalk::new(base)) as Box<dyn TraceSource>
                }
            })
            .collect();
        System::new(&cfg, scheme, traces).expect("paper-default config")
    };

    for scheme in [SchemeKind::Nopf, SchemeKind::Base, SchemeKind::CampsMod] {
        let mut sys = build(scheme);
        sys.warmup(50_000);
        let r = sys.run(50_000, 10_000_000, "custom").expect("custom run");
        println!(
            "{:>10}: geomean IPC {:.3}, conflicts {:>5.1}%, accuracy {:>5.1}%, AMAT {:>5.0} cy",
            scheme.name(),
            r.geomean_ipc(),
            r.conflict_rate() * 100.0,
            r.prefetch_accuracy() * 100.0,
            r.amat_mem,
        );
    }
    println!("\nThe column walk never reuses a row before wandering off — watch");
    println!("CAMPS avoid the useless whole-row fetches BASE wastes on it.");
}
